"""Columnar result store for scan runs: atomic cells, resumable manifest.

Layout of one store directory::

    store/
      manifest.json           # config digest + per-cell index (atomic)
      cells/cell-000007.npz   # one cell's series arrays (atomic)
      table.npz               # consolidated columnar table (finalize())
      table.parquet           # same table via pyarrow, when available

Durability discipline: every file is written to a ``.tmp`` sibling and
``os.replace``d into place, and a cell's ``.npz`` lands *before* the
manifest entry that points at it — a crash between the two leaves an
orphaned cell file that a resume simply overwrites.  The manifest
records each cell file's SHA-256, so :meth:`ScanStore.verify` detects
truncated or corrupted cell files and a resume re-runs exactly those
cells.  A manifest whose config digest does not match the config being
resumed is *stale* and refused with an actionable error — results from
a different grid must never be silently mixed in.

The consolidated table is pure-numpy (``table.npz`` with one array per
column); when :mod:`pyarrow` is importable (or ``backend="parquet"`` is
forced) an equivalent ``table.parquet`` is written next to it.  Nothing
in the repo requires pyarrow — the npz path is the tested contract.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile
from typing import Any, Dict, List, Optional

import numpy as np

from .cells import TIMING_SCALARS, CellResult

__all__ = ["ScanStore", "StoreError", "parquet_available"]

STORE_FORMAT = "repro.scan-store.v1"

#: manifest/table columns echoed from cell params (strings then numbers)
PARAM_COLUMNS = (
    "kind",
    "algorithm",
    "scenario",
    "engine",
    "epsilon",
    "w",
    "n_users",
    "horizon",
    "n_shards",
    "attack_fraction",
    "attack_strategy",
    "robust_policy",
)


class StoreError(ValueError):
    """A scan store is missing, stale, or corrupted beyond resume."""


def parquet_available() -> bool:
    """Whether the optional pyarrow parquet backend is importable."""
    try:
        import pyarrow  # noqa: F401
        import pyarrow.parquet  # noqa: F401
    except ImportError:
        return False
    return True


def _atomic_write_bytes(path: str, payload: bytes) -> None:
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(payload)
    os.replace(tmp, path)


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    _atomic_write_bytes(path, json.dumps(payload, sort_keys=True).encode())


class ScanStore:
    """One on-disk scan store (see the module docstring for layout).

    Args:
        path: store directory (created on first write).
        config_digest: the owning config's digest; required to create a
            store, checked against the manifest when opening an existing
            one (mismatch = stale manifest = :class:`StoreError`).
            ``None`` opens read-only for querying/reporting.
    """

    def __init__(self, path, config_digest: Optional[str] = None) -> None:
        self.path = str(path)
        self._manifest: Dict[str, Any] = {}
        manifest_path = self.manifest_path()
        if os.path.exists(manifest_path):
            self._manifest = self._load_manifest()
            if (
                config_digest is not None
                and self._manifest["config_digest"] != config_digest
            ):
                raise StoreError(
                    f"store {self.path} belongs to a different scan config "
                    f"(manifest digest {self._manifest['config_digest']}, "
                    f"expected {config_digest}); point --store at a fresh "
                    "directory or re-run with the original config"
                )
        elif config_digest is not None:
            os.makedirs(os.path.join(self.path, "cells"), exist_ok=True)
            self._manifest = {
                "format": STORE_FORMAT,
                "config_digest": config_digest,
                "n_cells": None,
                "finalized": False,
                "cells": {},
            }
            self._write_manifest()
        else:
            raise StoreError(
                f"{self.path} holds no scan store (no manifest.json)"
            )

    # -- paths -------------------------------------------------------------

    def manifest_path(self) -> str:
        return os.path.join(self.path, "manifest.json")

    def cell_path(self, index: int) -> str:
        return os.path.join(self.path, "cells", f"cell-{index:06d}.npz")

    def table_path(self) -> str:
        return os.path.join(self.path, "table.npz")

    def parquet_path(self) -> str:
        return os.path.join(self.path, "table.parquet")

    # -- manifest ----------------------------------------------------------

    def _load_manifest(self) -> Dict[str, Any]:
        path = self.manifest_path()
        try:
            with open(path) as fh:
                manifest = json.load(fh)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise StoreError(
                f"corrupted {path}: manifest is not valid JSON ({error}); "
                "the store cannot be resumed — delete the directory to "
                "rescan from scratch"
            ) from error
        if not isinstance(manifest, dict) or manifest.get("format") != STORE_FORMAT:
            raise StoreError(
                f"{path} is not a {STORE_FORMAT} manifest "
                f"(format={manifest.get('format') if isinstance(manifest, dict) else None!r}); "
                "delete the directory to rescan from scratch"
            )
        for key in ("config_digest", "cells"):
            if key not in manifest:
                raise StoreError(
                    f"corrupted {path}: manifest is missing {key!r}; delete "
                    "the directory to rescan from scratch"
                )
        return manifest

    def _write_manifest(self) -> None:
        _atomic_write_json(self.manifest_path(), self._manifest)

    @property
    def config_digest(self) -> str:
        return self._manifest["config_digest"]

    @property
    def finalized(self) -> bool:
        return bool(self._manifest.get("finalized"))

    def completed_indices(self) -> List[int]:
        """Indices the manifest records as completed (sorted)."""
        return sorted(int(key) for key in self._manifest["cells"])

    def cell_entry(self, index: int) -> Dict[str, Any]:
        return self._manifest["cells"][str(index)]

    # -- per-cell write/read ----------------------------------------------

    def write_cell(self, result: CellResult) -> None:
        """Persist one cell atomically: series file first, manifest second."""
        buffer = io.BytesIO()
        np.savez(buffer, **{k: np.ascontiguousarray(v) for k, v in result.series.items()})
        payload = buffer.getvalue()
        path = self.cell_path(result.index)
        _atomic_write_bytes(path, payload)
        self._manifest["cells"][str(result.index)] = {
            "file": os.path.relpath(path, self.path),
            "sha256": hashlib.sha256(payload).hexdigest(),
            "params": result.params,
            "scalars": {k: float(v) for k, v in sorted(result.scalars.items())},
            "ledger": result.ledger,
            "fingerprint": result.fingerprint(),
        }
        self._write_manifest()

    def read_cell(self, index: int) -> CellResult:
        """Load one completed cell back (digest-checked)."""
        entry = self._manifest["cells"].get(str(index))
        if entry is None:
            raise StoreError(f"store {self.path} holds no cell {index}")
        path = self.cell_path(index)
        problem = self._check_cell_file(index, entry)
        if problem is not None:
            raise StoreError(f"corrupted {path}: {problem}")
        with np.load(path) as data:
            series = {name: data[name] for name in data.files}
        return CellResult(
            index=index,
            params=entry["params"],
            scalars=dict(entry["scalars"]),
            series=series,
            ledger=entry["ledger"],
        )

    def _check_cell_file(
        self, index: int, entry: Dict[str, Any]
    ) -> Optional[str]:
        """``None`` when the cell file is intact, else what is wrong."""
        path = self.cell_path(index)
        if not os.path.exists(path):
            return "cell file is missing"
        with open(path, "rb") as fh:
            payload = fh.read()
        if hashlib.sha256(payload).hexdigest() != entry["sha256"]:
            return "cell file bytes do not match the manifest digest"
        try:
            with np.load(io.BytesIO(payload)) as data:
                data.files  # force the zip directory read
        except (ValueError, OSError, zipfile.BadZipFile, KeyError) as error:
            return f"cell file is unreadable ({error})"
        return None

    def verify(self) -> List[int]:
        """Indices whose recorded cell files are missing or corrupted.

        A resume re-runs exactly these cells; their manifest entries are
        dropped so a crash during the re-run cannot resurrect bad data.
        """
        bad: List[int] = []
        for index in self.completed_indices():
            if self._check_cell_file(index, self.cell_entry(index)) is not None:
                bad.append(index)
        if bad:
            for index in bad:
                del self._manifest["cells"][str(index)]
            self._manifest["finalized"] = False
            self._write_manifest()
        return bad

    # -- whole-store operations -------------------------------------------

    def results(self) -> List[CellResult]:
        """Every completed cell, ascending by index."""
        return [self.read_cell(index) for index in self.completed_indices()]

    def fingerprint(self) -> str:
        """Bit-exact digest of the store's deterministic content.

        Hashes every completed cell's fingerprint in index order —
        timing scalars never participate (see
        :data:`repro.scan.cells.TIMING_SCALARS`), so two stores compare
        equal iff they hold the same cells with bit-identical estimates,
        error metrics, and ledgers, regardless of which machine or how
        many workers produced them.
        """
        h = hashlib.sha256()
        h.update(self.config_digest.encode())
        for index in self.completed_indices():
            entry = self.cell_entry(index)
            h.update(f"{index}:".encode())
            h.update(entry["fingerprint"].encode())
        return "sha256:" + h.hexdigest()

    def table(self) -> Dict[str, np.ndarray]:
        """The consolidated columnar table, one row per completed cell.

        Columns: ``index``, the :data:`PARAM_COLUMNS` echoed from each
        cell's params, every scalar (``mse``, ``mae``,
        ``max_window_spend``, ``n_reports``, throughput, peak RSS), and
        the ``ledger`` digest strings.
        """
        indices = self.completed_indices()
        entries = [self.cell_entry(index) for index in indices]
        scalar_keys = sorted({key for e in entries for key in e["scalars"]})
        columns: Dict[str, np.ndarray] = {
            "index": np.asarray(indices, dtype=np.int64)
        }
        for column in PARAM_COLUMNS:
            # Adversarial columns default-fill (cells record them only
            # when off their benign defaults; old stores never do).
            if column == "attack_fraction":
                default: Any = 0.0
            elif column == "robust_policy":
                default = "none"
            else:
                default = ""
            values = [e["params"].get(column, default) for e in entries]
            if column in ("epsilon", "attack_fraction"):
                columns[column] = np.asarray(
                    [float(v if v != "" else "nan") for v in values], dtype=float
                )
            elif column in ("w", "n_users", "horizon", "n_shards"):
                columns[column] = np.asarray(
                    [int(v or 0) for v in values], dtype=np.int64
                )
            else:
                columns[column] = np.asarray([str(v) for v in values])
        for key in scalar_keys:
            columns[key] = np.asarray(
                [e["scalars"].get(key, np.nan) for e in entries], dtype=float
            )
        columns["ledger"] = np.asarray([e["ledger"] for e in entries])
        return columns

    def finalize(self) -> List[str]:
        """Write the consolidated table; returns the files written.

        Idempotent — called when every cell of the grid is complete.
        The parquet twin is written only when pyarrow imports.
        """
        columns = self.table()
        buffer = io.BytesIO()
        np.savez(buffer, **columns)
        _atomic_write_bytes(self.table_path(), buffer.getvalue())
        written = [self.table_path()]
        if parquet_available():
            import pyarrow as pa
            import pyarrow.parquet as pq

            table = pa.table(
                {name: pa.array(values.tolist()) for name, values in columns.items()}
            )
            tmp = self.parquet_path() + ".tmp"
            pq.write_table(table, tmp)
            os.replace(tmp, self.parquet_path())
            written.append(self.parquet_path())
        self._manifest["finalized"] = True
        self._write_manifest()
        return written

    def set_n_cells(self, n_cells: int) -> None:
        """Record the grid's total cell count (resume progress readout)."""
        if self._manifest.get("n_cells") != int(n_cells):
            self._manifest["n_cells"] = int(n_cells)
            self._write_manifest()

    @property
    def n_cells(self) -> Optional[int]:
        value = self._manifest.get("n_cells")
        return None if value is None else int(value)


def _scalar_columns(columns: Dict[str, np.ndarray]) -> List[str]:
    """Names of the numeric metric columns (timing ones included)."""
    skip = {"index", *PARAM_COLUMNS, "ledger"}
    return [name for name in columns if name not in skip]


# re-export for reporting convenience
SCALAR_SKIP = {"index", *PARAM_COLUMNS, "ledger"}
TIMING_COLUMNS = set(TIMING_SCALARS)
