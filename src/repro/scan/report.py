"""Human-readable scan summaries and the bench-regeneration mode.

:func:`summarize_store` renders a finished (or partial) store as the
``scan-report`` CLI text: completion state, the per-scenario winner, a
per-algorithm error table, and aggregate throughput.
:func:`summarize_plan` renders a ``--dry-run`` plan.  :func:`run_bench`
drives one steady-scenario cell per registry estimator through the same
orchestrator and merges the measured users/sec into the
``BENCH_population.json`` estimator matrix — the scan engine regenerates
the perf trajectory with the exact machinery the experiments use (note
these numbers include collector and ledger overhead, unlike the raw
engine pass in ``benchmarks/bench_registry.py``).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..registry import algorithm_names
from .cells import ScanCell
from .orchestrator import ScanRunResult, run_cells
from .store import ScanStore

__all__ = ["summarize_store", "summarize_plan", "run_bench"]


def _fmt(value: float) -> str:
    return f"{value:.3e}" if value == value else "-"


def summarize_store(path: str) -> str:
    """The ``scan-report`` text for one store directory."""
    store = ScanStore(path)
    columns = store.table()
    n_done = int(columns["index"].size)
    total = store.n_cells
    lines = [
        f"scan store {store.path}",
        f"  cells      {n_done}" + ("" if total is None else f" / {total}"),
        f"  finalized  {'yes' if store.finalized else 'no'}",
        f"  fingerprint {store.fingerprint()}",
    ]
    if not n_done:
        return "\n".join(lines)

    scenario_cells = columns["kind"] == "scenario"
    if "mse" in columns and np.any(scenario_cells):
        lines.append("")
        lines.append("  per-scenario best (lowest MSE):")
        for scenario in sorted(set(columns["scenario"][scenario_cells])):
            mask = scenario_cells & (columns["scenario"] == scenario)
            best = int(np.nanargmin(columns["mse"][mask]))
            algorithm = columns["algorithm"][mask][best]
            epsilon = columns["epsilon"][mask][best]
            mse = columns["mse"][mask][best]
            lines.append(
                f"    {scenario:10s} {algorithm:14s} eps={epsilon:<5g} "
                f"mse={_fmt(float(mse))}"
            )
        lines.append("")
        lines.append("  per-algorithm mean error over scenario cells:")
        for algorithm in sorted(set(columns["algorithm"][scenario_cells])):
            mask = scenario_cells & (columns["algorithm"] == algorithm)
            mse = float(np.nanmean(columns["mse"][mask]))
            mae = float(np.nanmean(columns["mae"][mask]))
            lines.append(
                f"    {algorithm:14s} cells={int(mask.sum()):4d} "
                f"mse={_fmt(mse)}  mae={_fmt(mae)}"
            )
    if "wall_seconds" in columns:
        wall = float(np.nansum(columns["wall_seconds"]))
        users = float(np.nansum(columns.get("users_per_sec", np.zeros(0))))
        peak = float(np.nanmax(columns["peak_rss_bytes"])) if "peak_rss_bytes" in columns else 0.0
        lines.append("")
        lines.append(
            f"  compute    {wall:.2f}s total cell time"
            + (f", peak RSS {peak / 1e6:.0f} MB" if peak else "")
        )
        if wall > 0 and users:
            lines.append(f"  throughput {n_done / wall:.2f} cells/s (serial-equivalent)")
    return "\n".join(lines)


def summarize_plan(result: ScanRunResult) -> str:
    """The ``--dry-run`` plan text: cells, filters, pruning, seeds."""
    config = result.config
    lines = [
        f"scan {config.name!r}: {result.n_cells} cells "
        f"({config.grid.n_raw_cells} raw, "
        f"{len(result.pruned)} pruned, seed_mode={config.seed_mode})",
    ]
    for cell in result.cells:
        lines.append(
            f"  [{cell.index:4d}] {cell.algorithm:14s} eps={cell.epsilon:<5g} "
            f"{cell.scenario:8s} users={cell.n_users:<8d} "
            f"shards={cell.n_shards} engine={cell.engine} "
            f"seeds=({cell.data_seed}, {cell.protocol_seed})"
        )
    for pruned in result.pruned:
        lines.append(f"  pruned: {pruned.reason}")
    if result.store_path:
        lines.append(f"  store: {result.store_path}")
    return "\n".join(lines)


def run_bench(
    out_path: str = "BENCH_population.json",
    algorithms: Optional[Sequence[str]] = None,
    n_users: int = 2_000,
    horizon: int = 64,
    epsilon: float = 1.0,
    w: int = 10,
    seed: int = 0,
    workers: int = 1,
) -> Dict[str, Any]:
    """Re-measure the estimator matrix through the scan engine.

    One steady-scenario sharded cell per registry estimator; the
    measured users/sec are merged into ``out_path``'s ``population``
    section (existing keys that the scan does not measure — e.g.
    ``scalar_users_per_sec`` from the registry bench — are preserved).

    Returns the merged ``population`` section.
    """
    names = list(algorithms) if algorithms else algorithm_names()
    cells = [
        ScanCell(
            index=i,
            kind="scenario",
            algorithm=name,
            epsilon=float(epsilon),
            w=int(w),
            data_seed=int(seed),
            protocol_seed=int(seed) + 1,
            scenario="steady",
            n_users=int(n_users),
            horizon=int(horizon),
            n_shards=1,
            engine="sharded",
        )
        for i, name in enumerate(names)
    ]
    results, _ = run_cells(cells, workers=workers)

    document: Dict[str, Any] = {}
    if os.path.exists(out_path):
        with open(out_path) as fh:
            document = json.load(fh)
    section = document.setdefault("population", {})
    section["n_users"] = int(n_users)
    section["horizon"] = int(horizon)
    estimators = section.setdefault("estimators", {})
    for cell in cells:
        result = results.get(cell.index)
        if result is None:  # pragma: no cover - cells never skip serially
            continue
        entry = estimators.setdefault(cell.algorithm, {})
        entry["vectorized_users_per_sec"] = float(
            result.scalars["users_per_sec"]
        )
    tmp = out_path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, out_path)
    return section


def bench_lines(section: Dict[str, Any]) -> List[str]:
    """Printable summary of a freshly merged bench section."""
    lines = [
        f"scan --bench: {len(section.get('estimators', {}))} estimators at "
        f"{section.get('n_users')} users x {section.get('horizon')} slots"
    ]
    for name, entry in sorted(section.get("estimators", {}).items()):
        rate = entry.get("vectorized_users_per_sec")
        if rate:
            lines.append(f"  {name:14s} {rate:12.0f} users/s")
    return lines
