"""Shared argument-validation helpers.

Every public entry point in :mod:`repro` validates its arguments through
these helpers so that error messages are uniform across the library and the
validation logic is tested in one place.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "ensure_epsilon",
    "ensure_positive_int",
    "ensure_probability",
    "ensure_stream",
    "ensure_stream_matrix",
    "ensure_in_unit_interval",
    "ensure_rng",
    "ensure_window",
]

#: Largest privacy budget we accept for a single randomizer invocation.
#: ``exp(eps)`` must stay finite in double precision; practical deployments
#: never exceed this.
MAX_EPSILON = 50.0


def ensure_epsilon(epsilon: float, name: str = "epsilon") -> float:
    """Validate a privacy budget and return it as a ``float``.

    Raises:
        TypeError: if ``epsilon`` is not a real number.
        ValueError: if ``epsilon`` is not in ``(0, MAX_EPSILON]``.
    """
    if isinstance(epsilon, bool) or not isinstance(epsilon, (int, float, np.floating, np.integer)):
        raise TypeError(f"{name} must be a real number, got {type(epsilon).__name__}")
    value = float(epsilon)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if value <= 0.0:
        raise ValueError(f"{name} must be positive, got {value}")
    if value > MAX_EPSILON:
        raise ValueError(f"{name} must be <= {MAX_EPSILON}, got {value}")
    return value


def ensure_positive_int(value: int, name: str) -> int:
    """Validate a strictly positive integer parameter."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value}")
    return int(value)


def ensure_probability(value: float, name: str) -> float:
    """Validate a probability in ``[0, 1]``."""
    prob = float(value)
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {prob}")
    return prob


def ensure_stream(values: Sequence[float], name: str = "values") -> np.ndarray:
    """Coerce a stream to a 1-D float array and validate it.

    Returns a *copy*, so callers may mutate the result freely.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr.copy()


def ensure_stream_matrix(streams, name: str = "streams") -> np.ndarray:
    """Validate a ``(n_users, T)`` population matrix of values in ``[0, 1]``.

    A zero-user matrix is allowed (an empty population is a valid, if
    trivial, protocol run); a population with zero slots is not.
    """
    arr = np.asarray(streams, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"{name} must form a (users, T) matrix, got shape {arr.shape}")
    if arr.shape[0] and arr.shape[1] == 0:
        raise ValueError(f"{name} must be non-empty")
    if arr.size:
        if not np.all(np.isfinite(arr)):
            raise ValueError(f"{name} must contain only finite values")
        if arr.min() < 0.0 or arr.max() > 1.0:
            raise ValueError(
                f"{name} must lie in [0, 1]; observed range "
                f"[{arr.min():.6g}, {arr.max():.6g}]"
            )
    return arr


def ensure_in_unit_interval(values: np.ndarray, name: str = "values") -> np.ndarray:
    """Validate that every element lies in ``[0, 1]``."""
    arr = ensure_stream(values, name)
    if arr.min() < 0.0 or arr.max() > 1.0:
        raise ValueError(
            f"{name} must lie in [0, 1]; observed range "
            f"[{arr.min():.6g}, {arr.max():.6g}]"
        )
    return arr


def ensure_rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    """Return ``rng`` if given, else a freshly seeded default generator."""
    if rng is None:
        return np.random.default_rng()
    if not isinstance(rng, np.random.Generator):
        raise TypeError(
            "rng must be a numpy.random.Generator (use numpy.random.default_rng)"
        )
    return rng


def ensure_window(w: int, name: str = "w") -> int:
    """Validate a w-event window size."""
    return ensure_positive_int(w, name)
