"""Scenario workload generator for the sharded runtime.

The paper evaluates on two real datasets and four fixed synthetic shapes
(:mod:`repro.datasets.synthetic`).  Production collection services see
much richer dynamics, so this module synthesizes parameterized *scenario*
workloads — diurnal cycles, population-wide bursty events, user
churn/dropout waves, and distribution drift — as population matrices the
runtime can stream chunk by chunk without ever materializing the whole
``(users, slots)`` matrix.

A scenario has two deterministic layers:

* a **population-level layer** shared by every user — the slot-level
  signal profile (:func:`slot_level_profile`, including the randomly
  timed bursts) and the per-slot participation schedule
  (:func:`participation_schedule`, modelling churn waves).  These depend
  only on the spec and the scenario seed, never on how the population is
  chunked, so every shard of a sharded run sees the same world events;

* a **per-user layer** — level offsets and observation noise — drawn from
  a chunk-keyed generator by :func:`scenario_chunk`, so any chunk can be
  (re)generated independently and reproducibly.

Values are clipped into ``[0, 1]``, matching the protocol's input domain.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .._validation import ensure_positive_int, ensure_probability, ensure_rng
from ..adversary.attacks import AttackSpec, make_attack
from ..datasets.synthetic import diurnal_stream

__all__ = [
    "ScenarioSpec",
    "SCENARIOS",
    "make_scenario",
    "slot_level_profile",
    "participation_schedule",
    "scenario_chunk",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """Parameterized population workload.

    Args:
        n_users: population size.
        horizon: number of time slots.
        base_level: resting population signal level.
        diurnal_amplitude: half peak-to-trough swing of the daily cycle
            (0 disables it).
        diurnal_period: slots per diurnal cycle (24 = hourly slots).
        drift: total signal-level shift from the first to the last slot
            (distribution drift; negative drifts downward).
        burst_rate: per-slot probability that a population-wide burst
            event starts (bursts are shared by all users, like a news
            event or an outage).
        burst_magnitude: level jump while a burst is active.
        burst_width: slots a burst lasts.
        noise_scale: per-(user, slot) Gaussian observation noise.
        user_spread: width of the uniform per-user level offset band
            (user heterogeneity).
        baseline_participation: resting per-slot reporting probability.
        churn_waves: number of dropout waves across the horizon (0
            disables churn).
        churn_depth: fraction of the baseline participation lost at the
            trough of each wave.
        churn_width: half-width of each wave in slots (raised-cosine
            shape).
        attack: optional :class:`~repro.adversary.AttackSpec` — a
            coalition of compromised users poisoning the collection (see
            :mod:`repro.adversary`).  The attack is a *protocol*-level
            modifier: the synthesized true-value matrices stay benign
            (ground truth is what honest collection would measure), and
            the runtime picks the spec up as its default attack.
        name: preset name, for reporting.
    """

    n_users: int
    horizon: int
    base_level: float = 0.5
    diurnal_amplitude: float = 0.0
    diurnal_period: int = 24
    drift: float = 0.0
    burst_rate: float = 0.0
    burst_magnitude: float = 0.3
    burst_width: int = 3
    noise_scale: float = 0.05
    user_spread: float = 0.1
    baseline_participation: float = 1.0
    churn_waves: int = 0
    churn_depth: float = 0.5
    churn_width: int = 6
    attack: Optional[AttackSpec] = None
    name: str = "custom"

    def __post_init__(self) -> None:
        ensure_positive_int(self.n_users, "n_users")
        ensure_positive_int(self.horizon, "horizon")
        ensure_positive_int(self.diurnal_period, "diurnal_period")
        ensure_positive_int(self.burst_width, "burst_width")
        ensure_positive_int(self.churn_width, "churn_width")
        ensure_probability(self.base_level, "base_level")
        ensure_probability(self.burst_rate, "burst_rate")
        ensure_probability(self.churn_depth, "churn_depth")
        if not 0.0 < self.baseline_participation <= 1.0:
            raise ValueError(
                "baseline_participation must be in (0, 1], got "
                f"{self.baseline_participation}"
            )
        if self.churn_waves < 0:
            raise ValueError(f"churn_waves must be >= 0, got {self.churn_waves}")
        for field_name in ("noise_scale", "user_spread", "burst_magnitude"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")
        if self.attack is not None and not isinstance(self.attack, AttackSpec):
            raise TypeError(
                f"attack must be an AttackSpec or None, got "
                f"{type(self.attack).__name__}"
            )


#: preset overrides by scenario name (applied on top of the defaults)
SCENARIOS: Dict[str, dict] = {
    "steady": {},
    "diurnal": {"diurnal_amplitude": 0.25, "diurnal_period": 24},
    "bursty": {"burst_rate": 0.06, "burst_magnitude": 0.35, "burst_width": 3},
    "churn": {
        "diurnal_amplitude": 0.15,
        "churn_waves": 2,
        "churn_depth": 0.6,
        "baseline_participation": 0.95,
    },
    "drift": {"drift": 0.35, "noise_scale": 0.08},
    # Adversarial presets: a steady workload with 5% of the population
    # compromised (one preset per attack strategy; see repro.adversary).
    "poisoned-extreme": {"attack": AttackSpec(fraction=0.05, strategy="extreme")},
    "poisoned-random": {"attack": AttackSpec(fraction=0.05, strategy="random")},
    "poisoned-targeted": {
        "attack": AttackSpec(fraction=0.05, strategy="targeted", target=1.0)
    },
}


def make_scenario(name: str, n_users: int, horizon: int, **overrides) -> ScenarioSpec:
    """Instantiate a preset scenario (overrides win over the preset).

    The ``attack`` override may be an :class:`~repro.adversary.AttackSpec`
    or its dict form (how TOML/CLI layers spell it).
    """
    if name not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        close = difflib.get_close_matches(name, sorted(SCENARIOS), n=3, cutoff=0.5)
        hint = (
            f"; did you mean {' or '.join(repr(c) for c in close)}?"
            if close
            else ""
        )
        raise KeyError(f"unknown scenario {name!r}{hint} (known: {known})")
    params = dict(SCENARIOS[name])
    params.update(overrides)
    if "attack" in params:
        params["attack"] = make_attack(params["attack"])
    return ScenarioSpec(n_users=n_users, horizon=horizon, name=name, **params)


def slot_level_profile(
    spec: ScenarioSpec,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """The population-level signal at every slot (before per-user noise).

    Deterministic given the spec and the generator state: base level,
    plus the diurnal sinusoid, plus linear drift, plus randomly timed
    population-wide bursts.  The sharded runtime computes this once per
    run (from the scenario seed) and shares it across every chunk, so
    bursts hit all shards at the same slots.
    """
    rng = ensure_rng(rng)
    t = np.arange(spec.horizon, dtype=float)
    if spec.diurnal_amplitude:
        level = diurnal_stream(
            spec.horizon,
            period=spec.diurnal_period,
            amplitude=spec.diurnal_amplitude,
            base=spec.base_level,
        )
    else:
        level = np.full(spec.horizon, spec.base_level)
    if spec.drift:
        level += spec.drift * t / max(spec.horizon - 1, 1)
    if spec.burst_rate > 0.0:
        starts = np.flatnonzero(rng.random(spec.horizon) < spec.burst_rate)
        for start in starts:
            level[start : start + spec.burst_width] += spec.burst_magnitude
    return np.clip(level, 0.0, 1.0)


def participation_schedule(spec: ScenarioSpec) -> np.ndarray:
    """Per-slot reporting probability with churn/dropout waves.

    Fully deterministic (no generator): waves are raised-cosine dips of
    depth ``churn_depth`` centered at evenly spaced slots, on top of the
    baseline participation.  Feed the result to the runtime's (or
    :func:`~repro.protocol.run_protocol_vectorized`'s) ``participation``
    argument.
    """
    schedule = np.full(spec.horizon, spec.baseline_participation)
    if spec.churn_waves and spec.churn_depth > 0.0:
        t = np.arange(spec.horizon, dtype=float)
        dip = np.zeros(spec.horizon)
        for i in range(spec.churn_waves):
            center = (i + 1) * spec.horizon / (spec.churn_waves + 1)
            offset = np.abs(t - center)
            inside = offset <= spec.churn_width
            bump = 0.5 * (1.0 + np.cos(np.pi * offset[inside] / spec.churn_width))
            dip[inside] = np.maximum(dip[inside], bump)
        schedule *= 1.0 - spec.churn_depth * dip
    return np.clip(schedule, 0.0, 1.0)


def scenario_chunk(
    spec: ScenarioSpec,
    n_users: int,
    rng: np.random.Generator,
    level: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One user-chunk's ``(n_users, horizon)`` true-value matrix.

    The per-user layer: each user gets a uniform level offset (within
    ``user_spread``) and i.i.d. Gaussian observation noise on top of the
    shared slot profile.  Pass the precomputed ``level`` profile to keep
    population-wide events identical across chunks; when omitted it is
    derived from ``rng`` (single-chunk convenience).
    """
    n_users = ensure_positive_int(n_users, "n_users")
    rng = ensure_rng(rng)
    if level is None:
        level = slot_level_profile(spec, rng)
    level = np.asarray(level, dtype=float)
    if level.shape != (spec.horizon,):
        raise ValueError(
            f"level profile must have shape ({spec.horizon},), got {level.shape}"
        )
    offsets = rng.uniform(-0.5, 0.5, size=n_users) * spec.user_spread
    matrix = level[None, :] + offsets[:, None]
    if spec.noise_scale:
        matrix = matrix + rng.normal(0.0, spec.noise_scale, size=matrix.shape)
    return np.clip(matrix, 0.0, 1.0)
