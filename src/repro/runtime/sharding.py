"""Sharded out-of-core execution of the collection protocol.

:func:`run_protocol_sharded` splits a population into user-shards (the
chunks of a :class:`~repro.runtime.sources.StreamSource`), runs the
vectorized protocol engine over each shard — serially or across
``multiprocessing`` workers — and merges the shards' collector states
into one :class:`~repro.protocol.Collector` plus a population-wide
budget audit.

Determinism contract
--------------------

Every shard draws its randomness from a child generator spawned as
``SeedSequence(seed, spawn_key=(chunk_index,))``.  The chunk
decomposition is a property of the source, so the merged result is a
pure function of ``(source, parameters, seed)``: executing with 1, 2, or
7 workers, serially or in processes, in any completion order, produces
bit-identical estimates and ledgers (merging happens in chunk order).
A source with a single chunk reproduces a plain
:func:`~repro.protocol.run_protocol_vectorized` call with that child
generator, bit for bit.

Checkpoint/resume
-----------------

With ``checkpoint_dir`` set, every completed shard's collector state and
budget ledgers are snapshotted to JSON (through
:mod:`repro.core.serialization`, whose floats round-trip exactly).  A
re-run with the same directory loads completed shards instead of
re-executing them, so a run interrupted mid-stream resumes where it
stopped and finishes bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from bisect import bisect_right
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from ..adversary.attacks import make_attack
from ..adversary.policies import make_policy
from ..core.serialization import (
    batch_accountant_from_dict,
    batch_accountant_to_dict,
    collector_state_from_dict,
    collector_state_to_dict,
)
from ..privacy.accountant import _TOLERANCE, PrivacyBudgetExceededError
from ..protocol.collector import Collector, CollectorShardState
from ..protocol.vectorized import run_protocol_vectorized
from .sources import PopulationChunk, StreamSource, as_source

__all__ = [
    "GroupLedger",
    "ShardResult",
    "ShardedRunResult",
    "run_protocol_sharded",
    "shard_rng",
]

_CHECKPOINT_FORMAT = "repro.shard-checkpoint.v1"


@dataclass
class GroupLedger:
    """One algorithm cohort's budget ledger inside a shard result.

    ``accountant`` is the JSON-safe snapshot produced by
    :func:`repro.core.serialization.batch_accountant_to_dict` — the audit
    and per-user ledger queries read the snapshot, so checkpointed and
    freshly computed shards are indistinguishable downstream.
    """

    algorithm: str
    indices: np.ndarray = field(repr=False)  # global user ids, ascending
    accountant: Dict[str, Any] = field(repr=False)
    _parsed: Optional[Dict[str, Any]] = field(
        default=None, repr=False, compare=False
    )

    def _payload(self) -> Dict[str, Any]:
        # Parse once: the (T, n_members) history conversion is O(T * n)
        # and the audit/ledger queries may hit it many times.
        if self._parsed is None:
            self._parsed = batch_accountant_from_dict(self.accountant)
        return self._parsed

    @property
    def epsilon(self) -> float:
        return float(self.accountant["epsilon"])

    @property
    def max_window_spend(self) -> np.ndarray:
        """Per-member maximum w-window spend (aligned with ``indices``)."""
        return self._payload()["max_window_spend"]

    @property
    def spends(self) -> Optional[np.ndarray]:
        """Full ``(T, n_members)`` spend history, if it was recorded."""
        return self._payload()["spends"]


@dataclass
class ShardResult:
    """Everything one executed (or checkpoint-restored) shard produced."""

    index: int
    start: int
    n_users: int
    horizon: int
    state: CollectorShardState = field(repr=False)
    ledgers: List[GroupLedger] = field(repr=False)
    true_slot_sums: np.ndarray = field(repr=False)  # (T,) ground-truth sums
    from_checkpoint: bool = False

    @property
    def stop(self) -> int:
        return self.start + self.n_users

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe checkpoint payload (exact float round trip)."""
        return {
            "format": _CHECKPOINT_FORMAT,
            "index": self.index,
            "start": self.start,
            "n_users": self.n_users,
            "horizon": self.horizon,
            "state": collector_state_to_dict(self.state),
            "ledgers": [
                {
                    "algorithm": ledger.algorithm,
                    "indices": ledger.indices.tolist(),
                    "accountant": ledger.accountant,
                }
                for ledger in self.ledgers
            ],
            "true_slot_sums": self.true_slot_sums.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardResult":
        if data.get("format") != _CHECKPOINT_FORMAT:
            raise ValueError(
                f"unsupported shard checkpoint format {data.get('format')!r}"
            )
        return cls(
            index=int(data["index"]),
            start=int(data["start"]),
            n_users=int(data["n_users"]),
            horizon=int(data["horizon"]),
            state=collector_state_from_dict(data["state"]),
            ledgers=[
                GroupLedger(
                    algorithm=entry["algorithm"],
                    indices=np.asarray(entry["indices"], dtype=np.intp),
                    accountant=entry["accountant"],
                )
                for entry in data["ledgers"]
            ],
            true_slot_sums=np.asarray(data["true_slot_sums"], dtype=float),
            from_checkpoint=True,
        )


@dataclass
class ShardedRunResult:
    """Merged outcome of a sharded protocol run.

    The collector answers aggregate queries exactly as an unsharded
    collector ingesting every report would; per-shard results keep the
    budget ledgers (and ground-truth slot sums) without ever holding the
    full population matrix.
    """

    collector: Collector
    shards: List[ShardResult] = field(repr=False)  # ascending by index
    n_users: int = 0
    horizon: int = 0
    epsilon: float = 1.0
    w: int = 10

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_resumed(self) -> int:
        """How many shards were restored from checkpoints, not executed."""
        return sum(shard.from_checkpoint for shard in self.shards)

    def _shard_for(self, user_id: int) -> ShardResult:
        starts = [shard.start for shard in self.shards]
        pos = bisect_right(starts, user_id) - 1
        if pos < 0 or user_id >= self.shards[pos].stop:
            raise KeyError(f"no shard contains user {user_id}")
        return self.shards[pos]

    def user_algorithm(self, user_id: int) -> str:
        """The online algorithm a user ran."""
        shard = self._shard_for(user_id)
        for ledger in shard.ledgers:
            if np.any(ledger.indices == user_id):
                return ledger.algorithm
        raise KeyError(f"no ledger contains user {user_id}")

    def user_budget_spends(self, user_id: int) -> np.ndarray:
        """One user's per-slot budget spend series (the w-event ledger)."""
        shard = self._shard_for(user_id)
        for ledger in shard.ledgers:
            position = np.flatnonzero(ledger.indices == user_id)
            if position.size:
                spends = ledger.spends
                if spends is None:
                    raise RuntimeError(
                        "per-slot ledger queries need record_history=True"
                    )
                return spends[:, int(position[0])]
        raise KeyError(f"no ledger contains user {user_id}")

    def max_window_spend(self) -> np.ndarray:
        """Per-user maximum w-window spend across the whole population."""
        out = np.zeros(self.n_users)
        for shard in self.shards:
            for ledger in shard.ledgers:
                out[ledger.indices] = ledger.max_window_spend
        return out

    def assert_valid(self) -> None:
        """Population-wide w-event audit (raises on any overspend)."""
        for shard in self.shards:
            for ledger in shard.ledgers:
                spends = ledger.max_window_spend
                if spends.size and spends.max() > self.epsilon + _TOLERANCE:
                    offender = int(ledger.indices[int(spends.argmax())])
                    raise PrivacyBudgetExceededError(
                        f"audit failed: user {offender}'s max window spend "
                        f"{spends.max():.6g} exceeds budget {self.epsilon:.6g}"
                    )

    def true_population_mean(self) -> np.ndarray:
        """Ground-truth population mean per slot (from per-shard sums)."""
        if not self.n_users:
            return np.zeros(0)
        total = np.zeros(self.horizon)
        for shard in self.shards:
            total += shard.true_slot_sums
        return total / self.n_users

    def population_mean_mse(self) -> float:
        """MSE between the collector's mean series and ground truth.

        Computed over the slots the collector observed, like
        :func:`~repro.protocol.simulation.population_mean_mse`, but from
        streamed per-shard truth sums — the full matrix is never needed.
        """
        slots = self.collector.slots()
        estimated = np.array([self.collector.population_mean(t) for t in slots])
        truth = self.true_population_mean()[slots]
        return float(np.mean((estimated - truth) ** 2))


def shard_rng(seed: int, chunk_index: int) -> np.random.Generator:
    """The deterministic child generator for one shard.

    Shared by every execution mode that runs a user-shard — the offline
    sharded runtime here and the live ingestion service
    (:mod:`repro.service`) — so a shard's randomness depends only on
    ``(seed, chunk_index)``, never on how or where the shard executes.
    """
    return np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(chunk_index,))
    )


def _execute_shard(task: "tuple[PopulationChunk, dict]") -> ShardResult:
    """Run one user-shard through the vectorized engine (worker body)."""
    chunk, params = task
    result = run_protocol_vectorized(
        chunk.matrix,
        algorithm=params["algorithm"],
        epsilon=params["epsilon"],
        w=params["w"],
        smoothing_window=params["smoothing_window"],
        participation=params["participation"],
        rng=shard_rng(params["seed"], chunk.index),
        record_history=params["record_history"],
        user_id_offset=chunk.start,
        track_users=params["track_users"],
        keep_reports=params["keep_reports"],
        attack=params.get("attack"),
        robust_policy=params.get("robust_policy"),
        group=chunk.index,
    )
    ledgers = [
        GroupLedger(
            algorithm=group.algorithm,
            indices=group.indices,
            accountant=batch_accountant_to_dict(group.engine.accountant),
        )
        for group in result.groups
    ]
    return ShardResult(
        index=chunk.index,
        start=chunk.start,
        n_users=chunk.n_users,
        horizon=chunk.matrix.shape[1],
        state=result.collector.state,
        ledgers=ledgers,
        true_slot_sums=chunk.matrix.sum(axis=0),
    )


# -- checkpoint store ------------------------------------------------------


def _load_checkpoint_json(path: str, what: str) -> Dict[str, Any]:
    """Read one checkpoint JSON file, failing loudly on corruption.

    A truncated or garbled snapshot (crash mid-write without the rename
    guard, disk corruption, manual edits) must surface as a clean,
    actionable error — never as a half-parsed payload silently merged
    into results.
    """
    try:
        with open(path) as fh:
            data = json.load(fh)
    except json.JSONDecodeError as error:
        raise ValueError(
            f"corrupted {path}: {what} is not valid JSON ({error}); the "
            "file is likely truncated — delete it to recompute"
        ) from error
    except UnicodeDecodeError as error:
        raise ValueError(
            f"corrupted {path}: {what} is not readable text ({error}); "
            "delete the file to recompute"
        ) from error
    if not isinstance(data, dict):
        raise ValueError(
            f"corrupted {path}: {what} must be a JSON object, got "
            f"{type(data).__name__}; delete the file to recompute"
        )
    return data


class _CheckpointStore:
    """One directory of per-shard JSON snapshots plus a run manifest."""

    def __init__(self, directory, meta: Dict[str, Any]) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._check_meta(meta)

    def _meta_path(self) -> str:
        return os.path.join(self.directory, "run.json")

    def _shard_path(self, index: int) -> str:
        return os.path.join(self.directory, f"shard-{index:06d}.json")

    def _check_meta(self, meta: Dict[str, Any]) -> None:
        path = self._meta_path()
        if os.path.exists(path):
            existing = _load_checkpoint_json(path, "run manifest")
            if existing != meta:
                raise ValueError(
                    f"checkpoint directory {self.directory} belongs to a "
                    "different run configuration; clear it or point "
                    "checkpoint_dir elsewhere"
                )
        else:
            self._write_json(path, meta)

    @staticmethod
    def _write_json(path: str, payload: Dict[str, Any]) -> None:
        # Write-then-rename so a crash mid-write never leaves a truncated
        # snapshot that a resume would try to load.
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)

    def load(self, index: int) -> Optional[ShardResult]:
        path = self._shard_path(index)
        if not os.path.exists(path):
            return None
        data = _load_checkpoint_json(path, f"shard {index} checkpoint")
        try:
            return ShardResult.from_dict(data)
        except ValueError:
            raise  # from_dict's format diagnostics are already precise
        except (KeyError, TypeError) as error:
            raise ValueError(
                f"corrupted {path}: shard {index} checkpoint is missing or "
                f"has malformed fields ({error!r}); delete the file to "
                "recompute the shard"
            ) from error

    def save(self, shard: ShardResult) -> None:
        self._write_json(self._shard_path(shard.index), shard.to_dict())


# -- executor --------------------------------------------------------------


def _iter_serial(
    tasks: Iterator["tuple[PopulationChunk, dict]"],
) -> Iterator[ShardResult]:
    for task in tasks:
        yield _execute_shard(task)


def _iter_parallel(
    tasks: Iterator["tuple[PopulationChunk, dict]"],
    max_workers: int,
) -> Iterator[ShardResult]:
    """Windowed fan-out over a process pool (bounded in-flight chunks).

    At most ``max_workers + 2`` chunks are materialized at a time, so
    out-of-core sources stay out of core.  Falls back to serial execution
    if worker processes cannot be spawned (restricted environments).
    """
    try:
        pool = ProcessPoolExecutor(max_workers=max_workers)
    except (OSError, PermissionError, ValueError) as error:  # pragma: no cover
        warnings.warn(
            f"process pool unavailable ({error}); running shards serially",
            RuntimeWarning,
            stacklevel=3,
        )
        yield from _iter_serial(tasks)
        return
    window = max_workers + 2
    with pool:
        pending = set()
        for task in tasks:
            pending.add(pool.submit(_execute_shard, task))
            if len(pending) >= window:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                yield future.result()


def run_protocol_sharded(
    source: Union[StreamSource, np.ndarray, Sequence[Sequence[float]]],
    algorithm: "str | Sequence[str]" = "capp",
    epsilon: float = 1.0,
    w: int = 10,
    smoothing_window: Optional[int] = 3,
    participation: "float | Sequence[float] | None" = None,
    seed: int = 0,
    chunk_size: Optional[int] = None,
    max_workers: Optional[int] = None,
    checkpoint_dir=None,
    record_history: bool = False,
    track_users: bool = False,
    keep_reports: bool = True,
    on_shard: Optional[Callable[[ShardResult], None]] = None,
    attack=None,
    robust_policy=None,
) -> ShardedRunResult:
    """Run the collection protocol shard by shard and merge the results.

    The population-scale counterpart of
    :func:`~repro.protocol.run_protocol_vectorized`: same protocol
    semantics and collector queries, but the population streams through
    as user-shards, each executed by the vectorized engine with a
    deterministically spawned child generator, optionally across worker
    processes, with per-shard checkpointing.

    Args:
        source: a :class:`~repro.runtime.sources.StreamSource`, or a raw
            ``(users, slots)`` matrix (wrapped via ``chunk_size``).
        algorithm: one name for everyone, or one name per (global) user.
        epsilon, w: w-event privacy parameters shared by all users.
        smoothing_window: collector-side SMA window.
        participation: per-(user, slot) reporting probability — a scalar,
            a ``(T,)`` per-slot schedule, or ``None`` to use the source's
            default (scenario sources supply their churn schedule).
        seed: root seed; shard ``i`` runs with
            ``SeedSequence(seed, spawn_key=(i,))``, so results are
            bit-reproducible for any worker count and execution order.
        chunk_size: users per shard when ``source`` is a raw matrix
            (default: one shard).  StreamSources carry their own chunking.
        max_workers: ``None``/``1`` executes serially in-process;
            ``>= 2`` fans shards out to a process pool (with a serial
            fallback when processes cannot be spawned).
        checkpoint_dir: directory for per-shard snapshots; an existing
            directory resumes, skipping already-completed shards.
        record_history: keep full per-slot budget ledgers (needed by
            :meth:`ShardedRunResult.user_budget_spends`; off by default —
            at population scale the history is O(users x slots)).
        track_users: keep the collector's per-user report dicts (same
            memory caveat; aggregate queries never need it).
        keep_reports: retain per-slot report arrays in the merged
            collector (needed for EM distribution queries).  At extreme
            scale pass ``False`` and only O(slots) running aggregates
            cross process boundaries, land in checkpoints, or stay
            resident.
        on_shard: callback invoked with each :class:`ShardResult` as it
            completes (progress reporting), in completion order.
        attack: optional :class:`~repro.adversary.AttackSpec` (or its
            dict form) — a coalition of compromised users poisoning the
            collection.  ``None`` uses the source's default (adversarial
            scenario presets carry one); pass
            ``AttackSpec(fraction=0.0)`` to force a benign run.  Attack
            randomness is a pure hash of global user ids, so the result
            stays bit-identical for any chunking or worker count.
        robust_policy: optional
            :class:`~repro.adversary.RobustPolicy` (or its name / dict
            form) applied at the collector boundary — ``clip`` transforms
            reports at ingestion, ``trim``/``median-of-means`` change the
            estimate fold.  The per-chunk group label feeding
            median-of-means is the global chunk index, so the grouping
            (and estimate) is decomposition-invariant.

    Returns:
        A :class:`ShardedRunResult`; its ``collector`` matches what a
        single unsharded collector would hold after ingesting every
        shard's reports.
    """
    src = as_source(source, chunk_size=chunk_size)
    if participation is None:
        participation = src.default_participation()
    if attack is None:
        attack = src.default_attack()
    attack = make_attack(attack)
    policy = make_policy(robust_policy)
    if max_workers is None:
        max_workers = 1
    max_workers = int(max_workers)
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")

    full_algorithm = algorithm if isinstance(algorithm, str) else list(algorithm)
    params = {
        "algorithm": full_algorithm,
        "epsilon": float(epsilon),
        "w": int(w),
        "smoothing_window": smoothing_window,
        "participation": participation,
        "seed": int(seed),
        "record_history": bool(record_history),
        "track_users": bool(track_users),
        "keep_reports": bool(keep_reports),
        "attack": attack,
        "robust_policy": policy,
    }

    store = None
    if checkpoint_dir is not None:
        schedule = np.asarray(participation, dtype=float)
        if isinstance(algorithm, str):
            algorithm_id = algorithm
        else:
            # Fingerprint per-user assignments so resuming under a
            # different assignment is rejected, not silently reused.
            digest = hashlib.sha256(
                json.dumps(list(algorithm)).encode()
            ).hexdigest()
            algorithm_id = f"per-user:{digest}"
        meta = {
            "format": _CHECKPOINT_FORMAT,
            "seed": params["seed"],
            "epsilon": params["epsilon"],
            "w": params["w"],
            "smoothing_window": smoothing_window,
            "algorithm": algorithm_id,
            "participation": schedule.tolist(),
            "record_history": params["record_history"],
            "track_users": params["track_users"],
            "keep_reports": params["keep_reports"],
        }
        # Adversarial keys ride along only when set, so benign runs keep
        # the exact v1 manifest (old checkpoint directories stay valid).
        if attack is not None:
            meta["attack"] = attack.to_dict()
        if policy is not None:
            meta["robust_policy"] = policy.to_dict()
        store = _CheckpointStore(checkpoint_dir, meta)

    resumed: Dict[int, ShardResult] = {}

    def tasks() -> Iterator["tuple[PopulationChunk, dict]"]:
        for chunk in src.chunks():
            if store is not None:
                restored = store.load(chunk.index)
                if restored is not None:
                    # The manifest cannot pin the chunk decomposition or
                    # the data (lazy sources reveal both only while
                    # streaming), so guard per shard: a snapshot must
                    # cover exactly this chunk of exactly this data.
                    if (
                        restored.start != chunk.start
                        or restored.n_users != chunk.n_users
                        or restored.horizon != chunk.matrix.shape[1]
                    ):
                        raise ValueError(
                            f"checkpointed shard {chunk.index} covers users "
                            f"[{restored.start}, {restored.stop}) but the "
                            f"source's chunk covers "
                            f"[{chunk.start}, {chunk.stop}); the chunk "
                            "decomposition changed — clear the checkpoint "
                            "directory or restore the original chunking"
                        )
                    if not np.array_equal(
                        restored.true_slot_sums, chunk.matrix.sum(axis=0)
                    ):
                        raise ValueError(
                            f"checkpointed shard {chunk.index} was computed "
                            "from different data than the source now yields "
                            "— clear the checkpoint directory or restore "
                            "the original data"
                        )
                    resumed[chunk.index] = restored
                    continue
            if isinstance(full_algorithm, str):
                yield chunk, params
            else:
                # Ship only this shard's slice of the per-user assignment
                # — pickling the full O(n_users) list into every worker
                # task is exactly the scaling cost this runtime avoids.
                names = full_algorithm[chunk.start : chunk.stop]
                if len(names) != chunk.n_users:
                    raise ValueError(
                        f"algorithm sequence too short: shard covers users "
                        f"[{chunk.start}, {chunk.stop}) but only "
                        f"{len(full_algorithm)} names were given"
                    )
                yield chunk, {**params, "algorithm": names}

    if max_workers == 1:
        results_iter = _iter_serial(tasks())
    else:
        results_iter = _iter_parallel(tasks(), max_workers)

    by_index: Dict[int, ShardResult] = {}
    for shard in results_iter:
        if store is not None:
            store.save(shard)
        if on_shard is not None:
            on_shard(shard)
        by_index[shard.index] = shard
    by_index.update(resumed)

    shards = [by_index[index] for index in sorted(by_index)]
    # Merge in chunk order so floating-point accumulation is identical for
    # every worker count and completion order.
    collector = Collector(
        epsilon_per_report=float(epsilon) / int(w),
        smoothing_window=smoothing_window,
        track_users=track_users,
        keep_reports=keep_reports,
        robust_policy=policy,
    )
    for shard in shards:
        collector.merge_state(shard.state)

    n_users = shards[-1].stop if shards else 0
    for previous, current in zip(shards, shards[1:]):
        if current.start != previous.stop:
            raise ValueError(
                f"source yielded non-contiguous shards: shard {current.index} "
                f"starts at user {current.start}, expected {previous.stop}"
            )

    result = ShardedRunResult(
        collector=collector,
        shards=shards,
        n_users=n_users,
        horizon=src.horizon,
        epsilon=float(epsilon),
        w=int(w),
    )
    result.assert_valid()
    return result
