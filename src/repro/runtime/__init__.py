"""Sharded streaming runtime: out-of-core population execution.

Scales the Fig. 1 collection protocol past one core and one machine's
RAM: :mod:`~repro.runtime.sources` streams the population as user-shard
chunks (in-memory, memmapped ``.npy``, generator, or synthesized scenario
workloads), :mod:`~repro.runtime.sharding` executes each shard through
the vectorized engine — serially or across worker processes, with
deterministic per-shard child generators and checkpoint/resume — and
merges the shards' collector states into one
:class:`~repro.protocol.Collector`.  :mod:`~repro.runtime.scenarios`
generates workloads (diurnal cycles, bursts, churn waves, drift) beyond
the paper's datasets.
"""

from .scenarios import (
    SCENARIOS,
    ScenarioSpec,
    make_scenario,
    participation_schedule,
    scenario_chunk,
    slot_level_profile,
)
from .sharding import (
    GroupLedger,
    ShardedRunResult,
    ShardResult,
    run_protocol_sharded,
    shard_rng,
)
from .sources import (
    DEFAULT_CHUNK_SIZE,
    GeneratorSource,
    MatrixSource,
    MemmapSource,
    PopulationChunk,
    ScenarioSource,
    StreamSource,
    as_source,
    scenario_source,
)

__all__ = [
    "run_protocol_sharded",
    "shard_rng",
    "ShardedRunResult",
    "ShardResult",
    "GroupLedger",
    "StreamSource",
    "PopulationChunk",
    "MatrixSource",
    "MemmapSource",
    "GeneratorSource",
    "ScenarioSource",
    "as_source",
    "scenario_source",
    "DEFAULT_CHUNK_SIZE",
    "ScenarioSpec",
    "SCENARIOS",
    "make_scenario",
    "slot_level_profile",
    "participation_schedule",
    "scenario_chunk",
]
