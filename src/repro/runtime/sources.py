"""Out-of-core population sources for the sharded runtime.

A :class:`StreamSource` yields the population as a sequence of
:class:`PopulationChunk` user-shards — contiguous ``(chunk_users,
horizon)`` slices tagged with their global user offset — so the runtime
never needs the whole ``(users, slots)`` matrix in one process's memory.
Chunk decomposition is a property of the *source* (its ``chunk_size``),
not of how many workers execute it: the executor may run chunks in any
order on any number of processes and the merged result is identical
(see :mod:`repro.runtime.sharding`).

Sources:

* :class:`MatrixSource` — an in-memory matrix, chunked (the adapter for
  existing workloads and tests);
* :class:`MemmapSource` — a ``.npy`` file opened with ``mmap_mode="r"``,
  so populations far larger than RAM stream from disk chunk by chunk;
* :class:`GeneratorSource` — any callable returning an iterable of
  matrices (fully lazy, unknown total size allowed);
* :class:`ScenarioSource` — chunks synthesized on the fly from a
  :class:`~repro.runtime.scenarios.ScenarioSpec`, with population-wide
  events shared across chunks and per-user randomness keyed by chunk
  index (bit-reproducible regardless of execution order).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Union

import numpy as np

from .._validation import ensure_positive_int, ensure_stream_matrix
from .scenarios import (
    ScenarioSpec,
    make_scenario,
    participation_schedule,
    scenario_chunk,
    slot_level_profile,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "PopulationChunk",
    "StreamSource",
    "MatrixSource",
    "MemmapSource",
    "GeneratorSource",
    "ScenarioSource",
    "as_source",
    "scenario_source",
]

#: default user-shard size — small enough that a chunk's working set
#: (matrix slice + engine state + reports) stays in cache-friendly
#: territory, large enough that vectorization dominates per-chunk overhead
DEFAULT_CHUNK_SIZE = 16_384


@dataclass(frozen=True)
class PopulationChunk:
    """One contiguous user-shard of the population.

    ``start`` is the global id of the first user in the chunk; user ``i``
    of ``matrix`` is global user ``start + i`` everywhere downstream
    (collector keys, budget ledgers).
    """

    index: int
    start: int
    matrix: np.ndarray = field(repr=False)

    @property
    def n_users(self) -> int:
        return self.matrix.shape[0]

    @property
    def stop(self) -> int:
        """Global id one past the chunk's last user."""
        return self.start + self.matrix.shape[0]


class StreamSource(abc.ABC):
    """Lazily yields a population as ordered, contiguous user-shards.

    Implementations must yield chunks with consecutive ``index`` values
    starting at 0 and consecutive user ranges starting at 0, and must
    yield the *same* chunks every time :meth:`chunks` is called — resume
    and worker-count invariance both rely on the decomposition being a
    pure function of the source.
    """

    @property
    @abc.abstractmethod
    def horizon(self) -> int:
        """Number of time slots every chunk carries."""

    @property
    def n_users(self) -> Optional[int]:
        """Total population size, if known up front (``None`` if lazy)."""
        return None

    @abc.abstractmethod
    def chunks(self) -> Iterator[PopulationChunk]:
        """Yield the population's chunks in user order."""

    def default_participation(self) -> "float | np.ndarray":
        """Participation the runtime uses when the caller passes none."""
        return 1.0

    def default_attack(self):
        """Attack spec the runtime uses when the caller passes none.

        ``None`` for plain sources; scenario sources whose spec carries
        an :class:`~repro.adversary.AttackSpec` return it, so adversarial
        presets poison every execution mode without extra plumbing.
        """
        return None


def _chunk_bounds(n_users: int, chunk_size: int) -> Iterator["tuple[int, int, int]"]:
    """(index, start, stop) triples covering ``range(n_users)``."""
    for index, start in enumerate(range(0, n_users, chunk_size)):
        yield index, start, min(start + chunk_size, n_users)


class MatrixSource(StreamSource):
    """Chunked view over an in-memory ``(users, slots)`` matrix."""

    def __init__(
        self,
        matrix: np.ndarray,
        chunk_size: Optional[int] = None,
    ) -> None:
        self._matrix = ensure_stream_matrix(matrix)
        if chunk_size is None:
            chunk_size = max(self._matrix.shape[0], 1)
        self.chunk_size = ensure_positive_int(chunk_size, "chunk_size")

    @property
    def horizon(self) -> int:
        return self._matrix.shape[1]

    @property
    def n_users(self) -> int:
        return self._matrix.shape[0]

    def chunks(self) -> Iterator[PopulationChunk]:
        for index, start, stop in _chunk_bounds(self._matrix.shape[0], self.chunk_size):
            yield PopulationChunk(
                index=index, start=start, matrix=self._matrix[start:stop]
            )


class MemmapSource(StreamSource):
    """Chunked reader over an on-disk ``.npy`` population matrix.

    The file is opened with ``mmap_mode="r"`` and only the slice backing
    the in-flight chunk is ever materialized, so the population may be
    arbitrarily larger than RAM.  Each chunk's values are validated on
    materialization (the whole-file validation pass a ``MatrixSource``
    would do up front is exactly what out-of-core execution must avoid).
    """

    def __init__(self, path, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        self.path = str(path)
        self.chunk_size = ensure_positive_int(chunk_size, "chunk_size")
        mm = np.load(self.path, mmap_mode="r")
        if mm.ndim != 2:
            raise ValueError(
                f"{self.path} must hold a (users, T) matrix, got shape {mm.shape}"
            )
        if mm.shape[0] and mm.shape[1] == 0:
            raise ValueError(f"{self.path} must be non-empty")
        self._shape = mm.shape
        del mm

    @property
    def horizon(self) -> int:
        return self._shape[1]

    @property
    def n_users(self) -> int:
        return self._shape[0]

    def chunks(self) -> Iterator[PopulationChunk]:
        mm = np.load(self.path, mmap_mode="r")
        for index, start, stop in _chunk_bounds(self._shape[0], self.chunk_size):
            block = ensure_stream_matrix(
                np.asarray(mm[start:stop], dtype=float),
                name=f"{self.path}[{start}:{stop}]",
            )
            yield PopulationChunk(index=index, start=start, matrix=block)


class GeneratorSource(StreamSource):
    """Chunks from a factory of matrices (fully lazy population).

    Args:
        factory: zero-argument callable returning an iterable of
            ``(chunk_users, horizon)`` matrices.  A callable (rather than
            a bare iterator) is required so the source can be iterated
            more than once — resume re-enumerates the chunk stream.
        horizon: the matrices' common slot count (validated per block).
    """

    def __init__(
        self,
        factory: Callable[[], Iterable[np.ndarray]],
        horizon: int,
    ) -> None:
        if not callable(factory):
            raise TypeError(
                "factory must be a zero-argument callable returning an "
                "iterable of matrices (so the stream can be replayed)"
            )
        self._factory = factory
        self._horizon = ensure_positive_int(horizon, "horizon")

    @property
    def horizon(self) -> int:
        return self._horizon

    def chunks(self) -> Iterator[PopulationChunk]:
        start = 0
        for index, block in enumerate(self._factory()):
            matrix = ensure_stream_matrix(block, name=f"chunk {index}")
            if matrix.shape[1] != self._horizon:
                raise ValueError(
                    f"chunk {index} has horizon {matrix.shape[1]}, "
                    f"expected {self._horizon}"
                )
            if matrix.shape[0] == 0:
                continue
            yield PopulationChunk(index=index, start=start, matrix=matrix)
            start += matrix.shape[0]


class ScenarioSource(StreamSource):
    """Synthesizes a scenario workload chunk by chunk.

    The population-level layer (signal profile with bursts, participation
    schedule) is derived once from ``seed`` and shared by every chunk;
    each chunk's per-user randomness comes from a generator keyed by
    ``(seed, chunk index)``, so any chunk can be regenerated independently
    — workers never need data from the parent process, and the workload is
    bit-reproducible for any chunk execution order.
    """

    #: entropy-stream tags keeping the shared schedule draw and the
    #: per-chunk draws on disjoint generator streams
    _SCHEDULE_STREAM = 0
    _CHUNK_STREAM = 1

    def __init__(
        self,
        spec: ScenarioSpec,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        seed: int = 0,
    ) -> None:
        if not isinstance(spec, ScenarioSpec):
            raise TypeError(f"spec must be a ScenarioSpec, got {type(spec).__name__}")
        self.spec = spec
        self.chunk_size = ensure_positive_int(chunk_size, "chunk_size")
        self.seed = int(seed)

    @property
    def horizon(self) -> int:
        return self.spec.horizon

    @property
    def n_users(self) -> int:
        return self.spec.n_users

    def level_profile(self) -> np.ndarray:
        """The shared slot-level signal (bursts included), seed-derived."""
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, self._SCHEDULE_STREAM])
        )
        return slot_level_profile(self.spec, rng)

    def default_participation(self) -> "float | np.ndarray":
        """The scenario's churn-aware per-slot participation schedule."""
        if self.spec.churn_waves or self.spec.baseline_participation < 1.0:
            return participation_schedule(self.spec)
        return 1.0

    def default_attack(self):
        """The scenario's attack spec (``None`` for benign presets)."""
        return self.spec.attack

    def chunks(self) -> Iterator[PopulationChunk]:
        level = self.level_profile()
        for index, start, stop in _chunk_bounds(self.spec.n_users, self.chunk_size):
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, self._CHUNK_STREAM, index])
            )
            matrix = scenario_chunk(self.spec, stop - start, rng, level=level)
            yield PopulationChunk(index=index, start=start, matrix=matrix)


def scenario_source(
    name: str,
    n_users: int,
    horizon: int,
    n_shards: int = 1,
    seed: int = 0,
    **overrides,
) -> ScenarioSource:
    """A preset scenario chunked into ``n_shards`` equal user-shards.

    The shared construction behind every workload entry point that takes
    a scenario *name* — the live CLI, the network gateway's serve/fleet
    commands, and the examples — so the server and a separately launched
    client fleet derive the exact same shard decomposition (and hence
    bit-identical results) from the same arguments.
    """
    n_shards = ensure_positive_int(n_shards, "n_shards")
    spec = make_scenario(name, n_users=n_users, horizon=horizon, **overrides)
    chunk_size = -(-spec.n_users // n_shards)  # ceil division
    return ScenarioSource(spec, chunk_size=chunk_size, seed=seed)


def as_source(
    source: Union[StreamSource, np.ndarray, "list[list[float]]"],
    chunk_size: Optional[int] = None,
) -> StreamSource:
    """Coerce a raw matrix into a :class:`MatrixSource` (sources pass through)."""
    if isinstance(source, StreamSource):
        if chunk_size is not None:
            raise ValueError(
                "chunk_size applies only when passing a raw matrix; "
                "configure the StreamSource itself instead"
            )
        return source
    return MatrixSource(np.asarray(source), chunk_size=chunk_size)
