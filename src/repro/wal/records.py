"""CRC-framed binary records of the write-ahead log.

Every entry in a WAL segment is one *record*:

.. code-block:: text

    offset  size  field
    0       2     magic  b"RW"
    2       1     wal-format version (currently 1)
    3       1     record type
    4       4     payload length (big-endian u32)
    8       4     CRC-32 over the type byte plus the payload
    12      n     payload

The framing deliberately mirrors the gateway wire format
(:mod:`repro.gateway.wire`) with one addition — the CRC — because a log
is read back after a crash, where a torn or bit-rotted tail must be
*detected*, not trusted.  ``BATCH`` records carry the exact binary
payload of :func:`repro.protocol.messages.encode_report_batch` (float64
report values round-trip bit-for-bit); ``RUN_START``, ``COMMIT`` and
``RUN_END`` carry UTF-8 JSON objects.  The full byte-level layout is
documented in ``docs/wal_format.md``.

Two failure classes are distinguished when parsing a segment back:

* a record truncated at the physical end of the segment is a **torn
  write** (the process died mid-append) — tolerated and reported, the
  prefix before it is intact;
* a complete record whose CRC does not match, or whose header is
  malformed, is **corruption** — :class:`WalCorruptionError`, never
  silently skipped.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, List, Tuple

from ..protocol.messages import decode_report_batch, encode_report_batch
from ..service.events import ReportBatch

__all__ = [
    "WAL_MAGIC",
    "WAL_VERSION",
    "MAX_RECORD_PAYLOAD",
    "RECORD_HEADER_BYTES",
    "RecordType",
    "WalError",
    "WalCorruptionError",
    "record_crc",
    "encode_record",
    "encode_json_record",
    "decode_json_payload",
    "encode_batch_record",
    "decode_batch_payload",
    "parse_records",
]

#: two-byte record preamble ("Repro Wal")
WAL_MAGIC = b"RW"

#: the WAL record-format version this module speaks
WAL_VERSION = 1

#: refusal bound for one record's payload — matches the gateway's frame
#: bound, so any batch the server accepted can be logged, while a
#: corrupt length field cannot make recovery allocate unbounded memory
MAX_RECORD_PAYLOAD = 64 * 1024 * 1024

_RECORD_HEADER = struct.Struct(">2sBBII")

#: size of the fixed record header, in bytes
RECORD_HEADER_BYTES = _RECORD_HEADER.size


class RecordType:
    """Record-type codes (one byte on disk)."""

    #: run configuration (JSON) — first record of a fresh log
    RUN_START = 1
    #: one accepted report batch (binary payload of ``encode_report_batch``)
    BATCH = 2
    #: one slot's barrier commit (JSON: ``t``, ``n_reports``, ``mean``)
    COMMIT = 3
    #: run completion marker (JSON summary)
    RUN_END = 4

    #: every code this version understands
    ALL = frozenset(range(1, 5))


class WalError(ValueError):
    """A write-ahead-log operation failed (bad input, bad state)."""


class WalCorruptionError(WalError):
    """A stored record is damaged (bad magic/version/type/CRC/length)."""


def record_crc(record_type: int, payload: bytes) -> int:
    """CRC-32 guarding one record (covers the type byte and the payload)."""
    return zlib.crc32(bytes([record_type]) + payload) & 0xFFFFFFFF


def encode_record(record_type: int, payload: bytes = b"") -> bytes:
    """One complete record: header (with CRC) plus payload."""
    if record_type not in RecordType.ALL:
        raise WalError(f"unknown WAL record type {record_type}")
    if len(payload) > MAX_RECORD_PAYLOAD:
        raise WalError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_RECORD_PAYLOAD}-byte record bound"
        )
    header = _RECORD_HEADER.pack(
        WAL_MAGIC, WAL_VERSION, record_type, len(payload),
        record_crc(record_type, payload),
    )
    return header + payload


def encode_json_record(record_type: int, fields: Dict[str, Any]) -> bytes:
    """A record with a JSON object payload (``repr``-exact floats)."""
    return encode_record(record_type, json.dumps(fields).encode("utf-8"))


def decode_json_payload(payload: bytes) -> Dict[str, Any]:
    """Parse a JSON record payload (must be an object)."""
    try:
        fields = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WalCorruptionError(
            f"WAL record payload is not valid JSON: {error}"
        ) from error
    if not isinstance(fields, dict):
        raise WalCorruptionError("WAL record payload must be a JSON object")
    return fields


def encode_batch_record(batch: ReportBatch) -> bytes:
    """Frame one report batch for the log (exact float round trip)."""
    payload = encode_report_batch(batch.shard, batch.t, batch.user_ids, batch.values)
    return encode_record(RecordType.BATCH, payload)


def decode_batch_payload(payload: bytes) -> ReportBatch:
    """Decode a ``BATCH`` payload into a validated :class:`ReportBatch`."""
    try:
        shard, t, user_ids, values = decode_report_batch(payload)
        return ReportBatch(shard=shard, t=t, user_ids=user_ids, values=values)
    except (ValueError, TypeError) as error:
        raise WalCorruptionError(f"malformed WAL batch payload: {error}") from error


def parse_records(
    data: bytes, source: str = "<wal>"
) -> Tuple[List[Tuple[int, bytes]], bool]:
    """Parse one segment's bytes into ``(records, torn_tail)``.

    Returns every complete, CRC-verified ``(record_type, payload)`` pair
    in order, plus a flag saying whether the segment ends in a torn
    (truncated) record.  A torn tail is expected after a crash — the
    writer appends with a single ``write`` call, so at most the final
    record can be incomplete.  Anything else — bad magic, an unknown
    version or type, an oversized length, a CRC mismatch on a complete
    record — raises :class:`WalCorruptionError` naming the byte offset.
    """
    records: List[Tuple[int, bytes]] = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < RECORD_HEADER_BYTES:
            return records, True  # torn header at EOF
        magic, version, record_type, length, crc = _RECORD_HEADER.unpack_from(
            data, offset
        )
        if magic != WAL_MAGIC:
            raise WalCorruptionError(
                f"{source}: bad record magic {magic!r} at offset {offset} "
                f"(expected {WAL_MAGIC!r})"
            )
        if version != WAL_VERSION:
            raise WalCorruptionError(
                f"{source}: unsupported WAL version {version} at offset "
                f"{offset}; this reader speaks version {WAL_VERSION}"
            )
        if record_type not in RecordType.ALL:
            raise WalCorruptionError(
                f"{source}: unknown record type {record_type} at offset {offset}"
            )
        if length > MAX_RECORD_PAYLOAD:
            raise WalCorruptionError(
                f"{source}: record payload of {length} bytes at offset "
                f"{offset} exceeds the {MAX_RECORD_PAYLOAD}-byte bound"
            )
        end = offset + RECORD_HEADER_BYTES + length
        if end > total:
            return records, True  # torn payload at EOF
        payload = data[offset + RECORD_HEADER_BYTES : end]
        if record_crc(record_type, payload) != crc:
            raise WalCorruptionError(
                f"{source}: CRC mismatch on record at offset {offset} "
                f"(type {record_type}, {length} payload bytes)"
            )
        records.append((record_type, payload))
        offset = end
    return records, False
