"""On-disk layout of a WAL directory: segments and checkpoint files.

A WAL directory holds:

* ``wal-%08d.seg`` — append-only record segments, numbered from 0.
  The live log always appends to the highest-numbered segment; opening
  an existing directory *rotates* to a fresh segment, so a torn record
  can only ever sit at the physical end of a segment (never before live
  appends).  Compaction deletes segments below the live one in
  ascending order, so the surviving numbering is always a contiguous
  run — a *gap* means a segment was lost and recovery must refuse to
  silently skip its slots.
* ``checkpoint-%08d.json`` — snapshot files written by compaction; the
  number names the first segment still needed on top of the snapshot.

:class:`SegmentWriter` appends **unbuffered** (``buffering=0``): every
append is a single ``write(2)`` syscall, so the bytes reach the OS page
cache before the caller proceeds and survive ``kill -9`` of the process
(only power loss can take them, which is what the fsync policies in
:mod:`repro.wal.log` are for).
"""

from __future__ import annotations

import os
import re
from typing import List, Tuple

from .records import WalCorruptionError, WalError, parse_records

__all__ = [
    "segment_name",
    "segment_path",
    "list_segments",
    "checkpoint_name",
    "checkpoint_path",
    "list_checkpoints",
    "SegmentWriter",
    "read_segment_records",
]

_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.seg$")
_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{8})\.json$")


def segment_name(index: int) -> str:
    """File name of segment ``index``."""
    if index < 0:
        raise WalError(f"segment index must be non-negative, got {index}")
    return f"wal-{index:08d}.seg"


def segment_path(directory: str, index: int) -> str:
    """Full path of segment ``index`` inside ``directory``."""
    return os.path.join(str(directory), segment_name(index))


def checkpoint_name(index: int) -> str:
    """File name of the checkpoint anchored at segment ``index``."""
    if index < 0:
        raise WalError(f"checkpoint index must be non-negative, got {index}")
    return f"checkpoint-{index:08d}.json"


def checkpoint_path(directory: str, index: int) -> str:
    """Full path of the checkpoint anchored at segment ``index``."""
    return os.path.join(str(directory), checkpoint_name(index))


def _list_indexed(directory: str, pattern: re.Pattern) -> List[Tuple[int, str]]:
    directory = str(directory)
    if not os.path.isdir(directory):
        return []
    found: List[Tuple[int, str]] = []
    for name in os.listdir(directory):
        match = pattern.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    found.sort()
    return found


def list_segments(directory: str) -> List[Tuple[int, str]]:
    """Sorted ``(index, path)`` of every segment in the directory.

    Raises:
        WalCorruptionError: the numbering has a gap — a middle segment
            is missing, and replaying around it would silently drop its
            slots.
    """
    segments = _list_indexed(directory, _SEGMENT_RE)
    for position, (index, _) in enumerate(segments):
        expected = segments[0][0] + position
        if index != expected:
            raise WalCorruptionError(
                f"WAL directory {directory} is missing segment {expected} "
                f"(found segment {index} after it); refusing to replay "
                "around lost slots"
            )
    return segments


def list_checkpoints(directory: str) -> List[Tuple[int, str]]:
    """Sorted ``(index, path)`` of every checkpoint file in the directory."""
    return _list_indexed(directory, _CHECKPOINT_RE)


_datasync = getattr(os, "fdatasync", os.fsync)


class SegmentWriter:
    """Unbuffered appender for one segment file."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fh = open(self.path, "ab", buffering=0)
        self.size = self._fh.tell()

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def append(self, data: bytes) -> None:
        """Append ``data`` with a single unbuffered write."""
        if self._fh.closed:
            raise WalError(f"segment {self.path} is closed")
        self._fh.write(data)
        self.size += len(data)

    def sync(self) -> None:
        """Force the segment to stable storage (power-loss durability).

        ``fdatasync`` where the platform has it: POSIX requires it to
        flush any metadata needed to read the appended data back (the
        file size), while skipping the timestamp churn ``fsync`` pays.
        """
        if not self._fh.closed:
            _datasync(self._fh.fileno())

    def close(self, sync: bool = True) -> None:
        """Close the segment (syncing first unless ``sync=False``)."""
        if not self._fh.closed:
            if sync:
                _datasync(self._fh.fileno())
            self._fh.close()


def read_segment_records(path: str) -> Tuple[List[Tuple[int, bytes]], bool]:
    """Read one segment back as ``(records, torn_tail)``.

    An empty segment is valid (an open-rotate-crash cycle leaves one)
    and returns ``([], False)``.  See :func:`repro.wal.records.parse_records`
    for the torn-tail / corruption distinction.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    return parse_records(data, source=os.path.basename(str(path)))
