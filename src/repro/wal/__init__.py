"""Durable write-ahead log for the live serving tier.

This package is the durability layer of the stack described in
``docs/architecture.md``: the gateway and the ingestion pipeline append
every accepted :class:`~repro.service.events.ReportBatch` — plus a
commit record per finalized slot — to a segmented, CRC-framed binary
log *before* acknowledging anything, so a ``kill -9`` of the server
mid-slot loses nothing.  On restart, :func:`recover_pipeline` replays
the log tail on top of the latest compaction checkpoint and the run
continues **bit-identical** to an uninterrupted one; because the
privacy ledgers live client-side, recovery never re-spends budget.

Layout of the package:

* :mod:`~repro.wal.records` — the CRC-framed record codec (the byte
  format is specified in ``docs/wal_format.md``);
* :mod:`~repro.wal.segment` — segment/checkpoint file layout and the
  unbuffered segment writer;
* :mod:`~repro.wal.log` — :class:`WriteAheadLog`, the appender with
  fsync policies and size-based rotation;
* :mod:`~repro.wal.recovery` — :func:`recover_pipeline` (replay) and
  :func:`compact` (checkpoint + old-segment deletion).

Operational procedures — enabling the WAL on a gateway, the
crash-recovery drill, compaction cadence — are in
``docs/operations.md``.
"""

from .log import DEFAULT_SEGMENT_BYTES, FSYNC_POLICIES, WriteAheadLog
from .records import (
    MAX_RECORD_PAYLOAD,
    RECORD_HEADER_BYTES,
    WAL_MAGIC,
    WAL_VERSION,
    RecordType,
    WalCorruptionError,
    WalError,
)
from .recovery import (
    CompactionResult,
    WalRecovery,
    compact,
    load_latest_checkpoint,
    recover_pipeline,
    write_checkpoint,
)
from .segment import (
    SegmentWriter,
    checkpoint_path,
    list_checkpoints,
    list_segments,
    read_segment_records,
    segment_path,
)

__all__ = [
    "WAL_MAGIC",
    "WAL_VERSION",
    "MAX_RECORD_PAYLOAD",
    "RECORD_HEADER_BYTES",
    "RecordType",
    "WalError",
    "WalCorruptionError",
    "FSYNC_POLICIES",
    "DEFAULT_SEGMENT_BYTES",
    "WriteAheadLog",
    "WalRecovery",
    "CompactionResult",
    "recover_pipeline",
    "compact",
    "write_checkpoint",
    "load_latest_checkpoint",
    "SegmentWriter",
    "segment_path",
    "checkpoint_path",
    "list_segments",
    "list_checkpoints",
    "read_segment_records",
]
