"""Crash recovery and log compaction for the write-ahead log.

:func:`recover_pipeline` rebuilds an :class:`~repro.service.IngestionPipeline`
from a WAL directory: it loads the latest compaction checkpoint (if
any), restores the collector state and published estimates bit-exactly,
then replays every surviving segment's batch records through the normal
``submit`` path — skipping anything the barrier already holds, so
replay is idempotent however the previous process died.  Commit records
are cross-checked against the recomputed estimates; a mismatch means
the log and the snapshot disagree and recovery refuses to continue.

:func:`compact` shrinks the log: it rotates to a fresh segment, writes
an atomic checkpoint snapshot (everything finalized), re-appends the
batches still waiting at the barrier into the fresh segment, and only
then deletes the older segments.  Every intermediate crash state is
recoverable — before the checkpoint lands the old segments still replay;
after it lands the re-appended pending batches replay on top of it (the
duplicate-skip makes the overlap harmless).

Because the privacy ledgers live client-side (on the shard feeds), a
collector crash never re-spends budget: recovery restores what the
server *accepted*, and the resume handshake tells each client exactly
which slots to re-upload without re-running any mechanism.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.streaming_queries import StreamingQueryEngine
from ..core.serialization import wal_checkpoint_from_dict, wal_checkpoint_to_dict
from ..service.events import SlotEstimate
from ..service.pipeline import IngestionPipeline
from ..service.sinks import Sink
from .log import WriteAheadLog
from .records import (
    RecordType,
    WalCorruptionError,
    WalError,
    decode_batch_payload,
    decode_json_payload,
)
from .segment import (
    checkpoint_path,
    list_checkpoints,
    list_segments,
    read_segment_records,
)

__all__ = [
    "WalRecovery",
    "CompactionResult",
    "recover_pipeline",
    "compact",
    "write_checkpoint",
    "load_latest_checkpoint",
]


@dataclass
class WalRecovery:
    """Everything :func:`recover_pipeline` reconstructed."""

    pipeline: IngestionPipeline = field(repr=False)
    config: Dict[str, Any]
    metadata: Dict[str, Any]
    #: next slot each shard should upload (the ``resume_slot`` handshake)
    next_expected: List[int]
    replayed_batches: int = 0
    skipped_batches: int = 0
    commits_verified: int = 0
    segments_read: int = 0
    #: index of the checkpoint the restore started from (None = none found)
    checkpoint_index: Optional[int] = None
    #: the final segment ended in a truncated record (a torn write)
    torn_tail: bool = False
    #: a RUN_END record was found — the crashed run had already finished
    run_ended: bool = False

    def summary(self) -> Dict[str, Any]:
        """JSON-safe recovery report (CLI output, operator logs)."""
        return {
            "next_slot": self.pipeline.next_slot,
            "horizon": self.pipeline.horizon,
            "n_shards": self.pipeline.n_shards,
            "next_expected": list(self.next_expected),
            "replayed_batches": self.replayed_batches,
            "skipped_batches": self.skipped_batches,
            "commits_verified": self.commits_verified,
            "segments_read": self.segments_read,
            "checkpoint_index": self.checkpoint_index,
            "torn_tail": self.torn_tail,
            "run_ended": self.run_ended,
        }


@dataclass
class CompactionResult:
    """What one :func:`compact` pass did."""

    checkpoint_path: str
    live_segment: int
    segments_deleted: int
    checkpoints_deleted: int
    pending_reappended: int


def write_checkpoint(directory: str, index: int, payload: Dict[str, Any]) -> str:
    """Atomically persist one checkpoint file (tmp + fsync + rename)."""
    path = checkpoint_path(directory, index)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(str(directory), os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path


def load_latest_checkpoint(
    directory: str,
) -> Optional[Tuple[int, Dict[str, Any]]]:
    """The newest checkpoint in the directory, parsed, or ``None``.

    Checkpoints are written atomically (rename), so a present file is a
    complete file; anything unparsable is corruption, not a torn write.
    """
    checkpoints = list_checkpoints(directory)
    if not checkpoints:
        return None
    index, path = checkpoints[-1]
    try:
        with open(path) as fh:
            data = json.load(fh)
        return index, wal_checkpoint_from_dict(data)
    except (OSError, ValueError) as error:
        raise WalCorruptionError(
            f"checkpoint {path} is unreadable: {error}"
        ) from error


def _build_pipeline(config: Dict[str, Any]) -> IngestionPipeline:
    smoothing = config.get("smoothing_window")
    return IngestionPipeline(
        n_shards=int(config["n_shards"]),
        horizon=int(config["horizon"]),
        epsilon=float(config["epsilon"]),
        w=int(config["w"]),
        smoothing_window=None if smoothing is None else int(smoothing),
        track_users=bool(config.get("track_users", False)),
        keep_reports=bool(config.get("keep_reports", True)),
        queue_capacity=int(config.get("queue_capacity", 256)),
        coalesce=int(config.get("coalesce", 8)),
        max_slot_skew=int(config.get("max_slot_skew", 8)),
        record_batches=bool(config.get("record_batches", False)),
        robust_policy=config.get("robust_policy"),
    )


def recover_pipeline(
    directory: str,
    sinks: Sequence[Sink] = (),
    dashboards: Optional[Dict[str, StreamingQueryEngine]] = None,
    verify_commits: bool = True,
    configure: Optional[Callable[[IngestionPipeline], None]] = None,
) -> WalRecovery:
    """Rebuild a pipeline from a WAL directory after a crash.

    Restores the latest checkpoint (bit-exact collector state), replays
    every surviving segment's batches through the normal barrier path,
    and cross-checks commit records against the recomputed estimates.
    The returned :class:`WalRecovery` carries the per-shard
    ``next_expected`` slots the restarted gateway hands to reconnecting
    clients — a resumed run finishes bit-identical to an uninterrupted
    one, with no privacy budget re-spent.

    Args:
        directory: the WAL directory of the crashed run.
        sinks, dashboards: outputs for the *continued* run; dashboards
            are caught up from the restored slot means before replay.
        verify_commits: cross-check every commit record bitwise against
            the recomputed slot estimates (disable only for forensics
            on a log known to be damaged).
        configure: called on the freshly built pipeline *before*
            checkpoint restore and segment replay — the place to set
            hooks (e.g. ``on_slot_finalized``) that must observe the
            replayed slots.  Replay fires the hook for every finalized
            slot found in the surviving segments; slots compacted into
            a checkpoint are restored, not replayed, so they do not
            re-fire it.

    Raises:
        WalError: the directory holds nothing to recover.
        WalCorruptionError: a damaged record, a missing segment, or a
            commit that contradicts the replayed state.
    """
    segments = list_segments(directory)
    loaded = load_latest_checkpoint(directory)
    if not segments and loaded is None:
        raise WalError(f"nothing to recover: {directory} holds no WAL")

    pipeline: Optional[IngestionPipeline] = None
    config: Dict[str, Any] = {}
    metadata: Dict[str, Any] = {}
    next_expected: List[int] = []
    checkpoint_index: Optional[int] = None

    def attach(built: IngestionPipeline) -> IngestionPipeline:
        for sink in sinks:
            built.add_sink(sink)
        for name, engine in (dashboards or {}).items():
            built.register_dashboard(name, engine)
        if configure is not None:
            configure(built)
        return built

    if loaded is not None:
        checkpoint_index, checkpoint = loaded
        config = checkpoint["config"]
        metadata = checkpoint["metadata"]
        pipeline = attach(_build_pipeline(config))
        pipeline.restore(
            checkpoint["collector_state"],
            [SlotEstimate.from_record(record) for record in checkpoint["slots"]],
            checkpoint["next_slot"],
        )
        next_expected = [pipeline.next_slot] * pipeline.n_shards

    replayed = skipped = commits = 0
    torn_any = False
    run_ended = False

    for _, path in segments:
        records, torn = read_segment_records(path)
        torn_any = torn_any or torn
        for record_type, payload in records:
            if record_type == RecordType.RUN_START:
                fields = decode_json_payload(payload)
                if pipeline is None:
                    config = dict(fields.get("config", {}))
                    metadata = dict(fields.get("metadata", {}))
                    pipeline = attach(_build_pipeline(config))
                    next_expected = [0] * pipeline.n_shards
                else:
                    started = fields.get("config", {})
                    if (
                        int(started.get("n_shards", -1)) != pipeline.n_shards
                        or int(started.get("horizon", -1)) != pipeline.horizon
                    ):
                        raise WalCorruptionError(
                            f"{path}: RUN_START configuration "
                            f"({started.get('n_shards')} shards, horizon "
                            f"{started.get('horizon')}) contradicts the "
                            f"restored run ({pipeline.n_shards} shards, "
                            f"horizon {pipeline.horizon}) — is this "
                            "directory shared between runs?"
                        )
            elif record_type == RecordType.BATCH:
                if pipeline is None:
                    raise WalCorruptionError(
                        f"{path}: batch record before any run configuration "
                        "(no checkpoint and no RUN_START)"
                    )
                batch = decode_batch_payload(payload)
                if batch.shard >= pipeline.n_shards or batch.t >= pipeline.horizon:
                    raise WalCorruptionError(
                        f"{path}: logged batch (shard {batch.shard}, slot "
                        f"{batch.t}) does not fit the run configuration"
                    )
                if pipeline.has_batch(batch.t, batch.shard):
                    skipped += 1
                else:
                    pipeline.submit(batch)
                    replayed += 1
                next_expected[batch.shard] = max(
                    next_expected[batch.shard], batch.t + 1
                )
            elif record_type == RecordType.COMMIT:
                fields = decode_json_payload(payload)
                if pipeline is None:
                    raise WalCorruptionError(
                        f"{path}: commit record before any run configuration"
                    )
                if verify_commits:
                    _verify_commit(pipeline, fields, path)
                commits += 1
            elif record_type == RecordType.RUN_END:
                run_ended = True

    if pipeline is None:
        raise WalError(
            f"nothing to recover: {directory} holds segments but no run "
            "configuration (was the log torn before its first record?)"
        )
    pipeline.run_metadata = metadata
    return WalRecovery(
        pipeline=pipeline,
        config=config,
        metadata=metadata,
        next_expected=next_expected,
        replayed_batches=replayed,
        skipped_batches=skipped,
        commits_verified=commits,
        segments_read=len(segments),
        checkpoint_index=checkpoint_index,
        torn_tail=torn_any,
        run_ended=run_ended,
    )


def _verify_commit(
    pipeline: IngestionPipeline, fields: Dict[str, Any], path: str
) -> None:
    """One commit record must match the recomputed estimate bitwise."""
    try:
        t = int(fields["t"])
        logged_reports = int(fields["n_reports"])
        logged_mean = fields["mean"]
    except (KeyError, TypeError, ValueError) as error:
        raise WalCorruptionError(
            f"{path}: malformed commit record {fields!r}"
        ) from error
    if t >= len(pipeline.slot_estimates):
        raise WalCorruptionError(
            f"{path}: commit for slot {t} but replay only finalized "
            f"{len(pipeline.slot_estimates)} slots — batch records for the "
            "slot are missing"
        )
    estimate = pipeline.slot_estimates[t]
    mean_matches = (
        estimate.mean is None
        if logged_mean is None
        else (estimate.mean is not None and float(logged_mean) == estimate.mean)
    )
    if estimate.n_reports != logged_reports or not mean_matches:
        raise WalCorruptionError(
            f"{path}: commit for slot {t} recorded n_reports="
            f"{logged_reports}, mean={logged_mean!r} but replay produced "
            f"n_reports={estimate.n_reports}, mean={estimate.mean!r} — the "
            "log and the snapshot disagree"
        )


def compact(log: WriteAheadLog, pipeline: IngestionPipeline) -> CompactionResult:
    """Fold everything finalized into a checkpoint and drop old segments.

    Safe to run while the pipeline is serving (the log's lock serializes
    against appends) and safe to crash at any point: until the old
    segments are deleted they still replay, and the checkpoint plus the
    re-appended pending batches cover everything from the moment it
    lands (replay skips the duplicates).
    """
    if pipeline.wal is not log:
        raise WalError(
            "compact needs the pipeline the log is attached to (their "
            "batches must be serialized by the same lock)"
        )
    with log.exclusive():
        live = log.rotate()
        payload = wal_checkpoint_to_dict(
            pipeline.run_config(),
            pipeline.run_metadata,
            pipeline.collector.state,
            [estimate.to_record() for estimate in pipeline.slot_estimates],
            pipeline.next_slot,
            live,
        )
        path = write_checkpoint(log.directory, live, payload)
        pending = pipeline.pending_batches()
        for batch in pending:
            log.append_batch(batch)
        log.sync()
        segments_deleted = 0
        for index, segment in list_segments(log.directory):
            if index < live:
                os.remove(segment)
                segments_deleted += 1
        checkpoints_deleted = 0
        for index, checkpoint in list_checkpoints(log.directory):
            if index < live:
                os.remove(checkpoint)
                checkpoints_deleted += 1
    return CompactionResult(
        checkpoint_path=path,
        live_segment=live,
        segments_deleted=segments_deleted,
        checkpoints_deleted=checkpoints_deleted,
        pending_reappended=len(pending),
    )
