"""The segmented write-ahead log the live tier appends to.

:class:`WriteAheadLog` owns one WAL directory: it appends CRC-framed
records (:mod:`repro.wal.records`) to the highest-numbered segment
(:mod:`repro.wal.segment`), rotating to a fresh segment when the current
one reaches ``segment_bytes``.  Appends are unbuffered — every record
reaches the OS page cache before the call returns, so an accepted batch
survives ``kill -9`` of the process regardless of the fsync policy.

fsync policies (power-loss durability)
--------------------------------------

``fsync`` controls when the log forces the page cache to stable storage:

* ``"always"`` — fsync after every record.  An acked batch survives
  power loss; the slowest policy.
* ``"commit"`` (default) — fsync at slot-commit, run-start and run-end
  records.  Power loss can take back at most the batches of the slots
  still open at the barrier, which clients simply re-upload on
  reconnect (the resume handshake asks the recovered server what it
  holds) — so nothing is lost *and* nothing is re-spent.  Commit syncs
  are *pipelined*: the fdatasync runs on a dedicated thread and the
  append path only waits for it at the **next** durability point
  (commit, rotation, explicit :meth:`sync`, or :meth:`close`), so the
  gateway's event loop is never blocked behind the disk.  The window
  this opens — one in-flight commit — is covered by the same resume
  handshake.
* ``"never"`` — leave flushing to the OS.  Still ``kill -9``-safe;
  fastest; power loss may take back the unflushed tail.

Opening a directory that already holds segments or checkpoints sets
:attr:`resumed` and rotates to a fresh segment, so recovery's torn-tail
rule stays simple: a truncated record can only sit at the physical end
of a segment.  Appends and compaction share one re-entrant lock
(:meth:`exclusive`), so a compaction snapshot can never interleave with
a half-appended record.
"""

from __future__ import annotations

import contextlib
import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, Iterator, Optional

from ..service.events import ReportBatch
from .records import (
    RecordType,
    WalError,
    encode_batch_record,
    encode_json_record,
)
from .segment import (
    SegmentWriter,
    list_checkpoints,
    list_segments,
    segment_path,
)

__all__ = ["FSYNC_POLICIES", "DEFAULT_SEGMENT_BYTES", "WriteAheadLog"]

#: accepted values of the ``fsync`` knob
FSYNC_POLICIES = ("always", "commit", "never")

#: default segment rotation threshold
DEFAULT_SEGMENT_BYTES = 64 * 1024 * 1024


class WriteAheadLog:
    """Durable append log for one pipeline run.

    Args:
        directory: the WAL directory (created if missing).  One run per
            directory — opening a directory with existing segments means
            *resuming* that run after recovery.
        fsync: power-loss durability policy (see the module docstring).
        segment_bytes: rotate to a fresh segment once the current one
            reaches this size (checked before each append, so a segment
            may exceed it by at most one record).
    """

    def __init__(
        self,
        directory: str,
        fsync: str = "commit",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r}; choose from {FSYNC_POLICIES}"
            )
        segment_bytes = int(segment_bytes)
        if segment_bytes < 1:
            raise WalError(f"segment_bytes must be >= 1, got {segment_bytes}")
        self.directory = str(directory)
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        os.makedirs(self.directory, exist_ok=True)
        segments = list_segments(self.directory)
        checkpoints = list_checkpoints(self.directory)
        #: whether the directory already held a run when this log opened
        self.resumed = bool(segments) or bool(checkpoints)
        next_index = 0
        if segments:
            next_index = segments[-1][0] + 1
        if checkpoints:
            next_index = max(next_index, checkpoints[-1][0] + 1)
        self._lock = threading.RLock()
        self._writer: Optional[SegmentWriter] = SegmentWriter(
            segment_path(self.directory, next_index)
        )
        self._segment_index = next_index
        self.records_appended = 0
        self.batches_appended = 0
        self.commits_appended = 0
        self.bytes_appended = 0
        self.syncs = 0
        self.rotations = 0
        self._sync_pool: Optional[ThreadPoolExecutor] = None
        self._sync_future: Optional[Future] = None

    # -- state -----------------------------------------------------------

    @classmethod
    def exists(cls, directory: str) -> bool:
        """Whether ``directory`` holds a recoverable log (segments or
        checkpoints) — the restart-time "resume or start fresh?" probe."""
        directory = str(directory)
        if not os.path.isdir(directory):
            return False
        try:
            segments = list_segments(directory)
        except WalError:
            return True  # damaged numbering is still *something* to recover
        return bool(segments) or bool(list_checkpoints(directory))

    @property
    def closed(self) -> bool:
        return self._writer is None

    @property
    def segment_index(self) -> int:
        """Index of the segment currently being appended to."""
        return self._segment_index

    def stats(self) -> Dict[str, Any]:
        """JSON-safe counter snapshot (for run results and the CLI)."""
        with self._lock:
            return {
                "directory": self.directory,
                "fsync": self.fsync,
                "resumed": self.resumed,
                "segment_index": self._segment_index,
                "segment_bytes": self.segment_bytes,
                "records_appended": self.records_appended,
                "batches_appended": self.batches_appended,
                "commits_appended": self.commits_appended,
                "bytes_appended": self.bytes_appended,
                "syncs": self.syncs,
                "rotations": self.rotations,
            }

    # -- appending -------------------------------------------------------

    def append_run_start(
        self, config: Dict[str, Any], metadata: Optional[Dict[str, Any]] = None
    ) -> None:
        """Log the run configuration (first record of a fresh log)."""
        record = encode_json_record(
            RecordType.RUN_START,
            {"config": dict(config), "metadata": dict(metadata or {})},
        )
        self._append(record, want_sync=self.fsync != "never")

    def append_batch(self, batch: ReportBatch) -> None:
        """Log one accepted report batch (before its ack is sent)."""
        if not isinstance(batch, ReportBatch):
            raise WalError(f"expected a ReportBatch, got {type(batch).__name__}")
        record = encode_batch_record(batch)
        self._append(record, want_sync=False)
        with self._lock:
            self.batches_appended += 1

    def append_commit(self, t: int, n_reports: int, mean: Optional[float]) -> None:
        """Log one slot's barrier commit (fsync point under ``"commit"``)."""
        record = encode_json_record(
            RecordType.COMMIT,
            {
                "t": int(t),
                "n_reports": int(n_reports),
                "mean": None if mean is None else float(mean),
            },
        )
        self._append(record, want_sync=self.fsync != "never")
        with self._lock:
            self.commits_appended += 1

    def append_run_end(self, summary: Dict[str, Any]) -> None:
        """Log run completion (the result was built and published)."""
        record = encode_json_record(RecordType.RUN_END, dict(summary))
        self._append(record, want_sync=self.fsync != "never")

    def _append(self, record: bytes, want_sync: bool) -> None:
        with self._lock:
            writer = self._writer
            if writer is None:
                raise WalError(f"write-ahead log {self.directory} is closed")
            if writer.size > 0 and writer.size + len(record) > self.segment_bytes:
                self._rotate_locked()
                writer = self._writer
            writer.append(record)
            self.records_appended += 1
            self.bytes_appended += len(record)
            if want_sync or self.fsync == "always":
                if self.fsync == "always":
                    # "always" promises the record is on stable storage
                    # before the ack — no pipelining.
                    writer.sync()
                else:
                    self._issue_sync_locked(writer)
                self.syncs += 1

    def _issue_sync_locked(self, writer: SegmentWriter) -> None:
        """Pipelined sync: dispatch to the sync thread, waiting only for
        the previous dispatch (depth one keeps the loss window at a
        single commit)."""
        self._drain_sync_locked()
        if self._sync_pool is None:
            self._sync_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="wal-sync"
            )
        self._sync_future = self._sync_pool.submit(writer.sync)

    def _drain_sync_locked(self) -> None:
        future, self._sync_future = self._sync_future, None
        if future is not None:
            future.result()  # a failed fdatasync surfaces here

    # -- rotation / compaction hooks -------------------------------------

    def rotate(self) -> int:
        """Seal the current segment and open the next; returns its index.

        The sealed segment is fsynced — rotation is a durability
        boundary regardless of policy (compaction is about to treat
        everything before the new segment as replaceable).
        """
        with self._lock:
            if self._writer is None:
                raise WalError(f"write-ahead log {self.directory} is closed")
            self._rotate_locked()
            return self._segment_index

    def _rotate_locked(self) -> None:
        assert self._writer is not None
        self._drain_sync_locked()
        self._writer.close(sync=True)
        self._segment_index += 1
        self._writer = SegmentWriter(
            segment_path(self.directory, self._segment_index)
        )
        self.rotations += 1

    @contextlib.contextmanager
    def exclusive(self) -> Iterator["WriteAheadLog"]:
        """Hold the append lock (compaction snapshots run under this)."""
        with self._lock:
            yield self

    def sync(self) -> None:
        """Force the current segment to stable storage now (drains any
        in-flight pipelined commit sync first)."""
        with self._lock:
            if self._writer is not None:
                self._drain_sync_locked()
                self._writer.sync()
                self.syncs += 1

    # -- shutdown --------------------------------------------------------

    def close(self) -> None:
        """Clean shutdown: fsync and close the live segment."""
        with self._lock:
            if self._writer is not None:
                self._drain_sync_locked()
                self._writer.close(sync=True)
                self._writer = None
            if self._sync_pool is not None:
                self._sync_pool.shutdown(wait=True)
                self._sync_pool = None

    def abandon(self) -> None:
        """Crash-like shutdown: close the file descriptor *without*
        fsync, exactly what ``kill -9`` leaves behind (the unbuffered
        appends are already in the page cache; nothing else is flushed).
        The chaos harness uses this to make an in-process "crash"
        indistinguishable from a killed process."""
        with self._lock:
            future, self._sync_future = self._sync_future, None
            if future is not None and not future.cancel():
                # A pipelined commit fdatasync is mid-flight on the sync
                # thread: let it finish before closing its fd rather than
                # racing fdatasync against close (EBADF, or a sync on a
                # reused fd number).  A real kill -9 can land on either
                # side of an in-flight flush, so this stays faithful.
                with contextlib.suppress(Exception):
                    future.result()
            if self._writer is not None:
                self._writer.close(sync=False)
                self._writer = None
            if self._sync_pool is not None:
                self._sync_pool.shutdown(wait=False)
                self._sync_pool = None
