"""Adversarial workloads and robust aggregation for the LDP protocol.

Three pieces (see :doc:`docs/adversary` for the threat model):

* :class:`AttackSpec` — poisoning attacks (``extreme`` input poisoning,
  ``targeted``/``random`` report poisoning) as deterministic, seed-free
  scenario modifiers that compose with every execution mode;
* :class:`RobustPolicy` — collector-boundary defenses (clip-to-domain,
  trimmed mean, median-of-shard-means) applying one identical fold
  across the vectorized / sharded / live / gateway / distributed paths;
* :func:`run_adversarial_study` / :func:`manipulation_gain` — the
  attack x defense sweep and its paired-run metric.
"""

from .attacks import ATTACK_STRATEGIES, AttackSpec, hash_uniform, make_attack
from .policies import POLICIES, RobustPolicy, make_policy
from .study import manipulation_gain, run_adversarial_study

__all__ = [
    "ATTACK_STRATEGIES",
    "AttackSpec",
    "hash_uniform",
    "make_attack",
    "POLICIES",
    "RobustPolicy",
    "make_policy",
    "manipulation_gain",
    "run_adversarial_study",
]
