"""Robust-aggregation policies applied at the collector boundary.

A :class:`RobustPolicy` is the collector's defense against poisoned
reports (:mod:`repro.adversary.attacks`).  Policies plug into
:class:`~repro.protocol.Collector` /
:class:`~repro.protocol.CollectorShardState` so every execution mode —
vectorized, sharded, live, gateway, distributed — applies the *identical*
fold and stays bit-identical to the others:

* ``none`` — the plain running-sum mean (the default; represented as
  ``None`` everywhere downstream so unconfigured runs are untouched).
* ``clip`` — clip-to-domain at *ingestion* time: every report is clipped
  into ``[low, high]`` element-wise before it enters the running sums.
  Clipping is idempotent and element-wise, so the fold order is exactly
  the unclipped fold's order and any shard decomposition merges to the
  same bits.
* ``trim`` — trimmed mean at *query* time: the slot's retained reports
  are sorted and the ``trim`` fraction is dropped from each tail before
  averaging.  Sorting removes the segment-concatenation order, so the
  estimate is invariant under decomposition **and** merge order (it
  needs ``keep_reports=True``).
* ``median-of-means`` — median of per-shard-group means at query time:
  each ingested batch carries a group label (the global chunk index),
  per-group sums/counts accumulate in the shard state, and the estimate
  is the median of the group means in sorted-group order.  The grouping
  is defined by the chunk decomposition, so the estimate is a pure
  function of ``(source chunking, reports)``.

Policies are frozen dataclasses: picklable (multiprocessing workers),
hashable, and comparable — shard-state merges require both operands to
carry the *same* policy, so mixed-policy folds fail loudly.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["POLICIES", "RobustPolicy", "make_policy"]

#: the registered robust-aggregation policy kinds
POLICIES = ("none", "clip", "trim", "median-of-means")


@dataclass(frozen=True)
class RobustPolicy:
    """One robust-aggregation policy (see the module docstring).

    Args:
        kind: ``clip``, ``trim``, or ``median-of-means`` (``none`` is
            represented as no policy at all — see :func:`make_policy`).
        low, high: the clip interval (``clip`` only; defaults to the
            protocol's ``[0, 1]`` input domain).
        trim: fraction trimmed from *each* tail (``trim`` only).
    """

    kind: str = "clip"
    low: float = 0.0
    high: float = 1.0
    trim: float = 0.1

    def __post_init__(self) -> None:
        if self.kind not in POLICIES:
            close = difflib.get_close_matches(
                str(self.kind), POLICIES, n=3, cutoff=0.5
            )
            hint = (
                f"; did you mean {' or '.join(repr(c) for c in close)}?"
                if close
                else ""
            )
            known = ", ".join(POLICIES)
            raise ValueError(
                f"unknown robust policy {self.kind!r}{hint} (known: {known})"
            )
        if not (np.isfinite(self.low) and np.isfinite(self.high)):
            raise ValueError(
                f"clip bounds must be finite, got [{self.low}, {self.high}]"
            )
        if not self.low < self.high:
            raise ValueError(
                f"clip bounds must satisfy low < high, got "
                f"[{self.low}, {self.high}]"
            )
        if not 0.0 <= float(self.trim) < 0.5:
            raise ValueError(
                f"trim fraction must be in [0, 0.5), got {self.trim}"
            )

    # -- capability switches ---------------------------------------------

    @property
    def uses_groups(self) -> bool:
        """Whether ingestion must accumulate per-group sums/counts."""
        return self.kind == "median-of-means"

    @property
    def needs_reports(self) -> bool:
        """Whether the policy's query fold reads retained report arrays."""
        return self.kind == "trim"

    # -- the two folds ---------------------------------------------------

    def transform(self, values: np.ndarray) -> np.ndarray:
        """The ingestion-time value transform (identity unless ``clip``)."""
        if self.kind == "clip":
            return np.clip(values, self.low, self.high)
        return values

    def transform_scalar(self, value: float) -> float:
        """Scalar counterpart of :meth:`transform` (per-report path)."""
        if self.kind == "clip":
            return float(min(max(value, self.low), self.high))
        return float(value)

    def slot_mean(self, state, t: int) -> float:
        """The query-time population-mean fold over one slot's state.

        ``state`` is a :class:`~repro.protocol.CollectorShardState`
        (duck-typed to avoid a circular import).  The caller guarantees
        the slot has at least one report.
        """
        if self.kind == "trim":
            values = np.sort(np.asarray(state.slot_reports(t), dtype=float))
            k = int(float(self.trim) * values.size)
            if values.size - 2 * k < 1:
                return float(np.median(values))
            return float(values[k : values.size - k].mean())
        if self.kind == "median-of-means":
            sums = state.group_sums.get(t, {})
            counts = state.group_counts.get(t, {})
            means = [
                sums[g] / counts[g] for g in sorted(sums) if counts.get(g)
            ]
            if not means:
                raise KeyError(f"no group aggregates at slot {t}")
            return float(np.median(means))
        return state.slot_sums[t] / state.slot_counts[t]

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload (checkpoints, WAL run configs, snapshots)."""
        return {
            "kind": str(self.kind),
            "low": float(self.low),
            "high": float(self.high),
            "trim": float(self.trim),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RobustPolicy":
        return cls(
            kind=str(data.get("kind", "clip")),
            low=float(data.get("low", 0.0)),
            high=float(data.get("high", 1.0)),
            trim=float(data.get("trim", 0.1)),
        )


def make_policy(
    policy: "RobustPolicy | str | Dict[str, Any] | None",
) -> Optional[RobustPolicy]:
    """Resolve a policy argument to a :class:`RobustPolicy` (or ``None``).

    Accepts a policy object, a kind name (``"clip"``, ``"trim"``,
    ``"median-of-means"``), a :meth:`RobustPolicy.to_dict` payload, or
    ``None``.  Both ``None`` and ``"none"`` resolve to ``None`` — the
    collector's untouched default fold — so the no-defense path carries
    no policy object anywhere (and serialized states omit the field).
    """
    if policy is None:
        return None
    if isinstance(policy, RobustPolicy):
        return None if policy.kind == "none" else policy
    if isinstance(policy, str):
        if policy == "none":
            return None
        return RobustPolicy(kind=policy)
    if isinstance(policy, dict):
        return make_policy(RobustPolicy.from_dict(policy))
    raise TypeError(
        f"robust_policy must be a RobustPolicy, a kind name, a dict, or "
        f"None, got {type(policy).__name__}"
    )
