"""Adversarial studies: paired runs and the manipulation-gain metric.

The manipulation gain of an attack is the shift it causes in the
collector's published estimates: two runs share every seed (protocol,
workload, participation — the attack's own hash stream is independent by
construction, see :mod:`repro.adversary.attacks`), one benign and one
attacked, and the gain is the mean absolute difference of their
population-mean series.  Because the runs are paired, mechanism noise
cancels almost entirely and the metric isolates the attacker's effect.

:func:`run_adversarial_study` sweeps attack strategies against robust
policies over the scenario presets, executing each (scenario, algorithm,
strategy, policy) combination as one scan cell — the same engine
`python -m repro scan` fans out, so the study inherits the scan tier's
determinism and worker-count invariance.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

__all__ = ["manipulation_gain", "run_adversarial_study"]


def manipulation_gain(
    benign: np.ndarray, attacked: np.ndarray
) -> float:
    """Mean absolute estimate shift between paired series.

    Args:
        benign: the benign run's per-slot estimate series.
        attacked: the attacked run's series (same seeds, same slots —
            attacks never change who reports, so the two runs observe
            identical slot sets; trailing slots present in only one
            series are ignored defensively).
    """
    benign = np.asarray(benign, dtype=float)
    attacked = np.asarray(attacked, dtype=float)
    n = min(benign.size, attacked.size)
    if n == 0:
        return 0.0
    return float(np.mean(np.abs(attacked[:n] - benign[:n])))


def run_adversarial_study(
    scenarios: Iterable[str] = ("steady",),
    algorithms: Iterable[str] = ("capp",),
    strategies: Iterable[str] = ("extreme", "targeted", "random"),
    policies: Iterable[str] = ("none", "clip", "trim", "median-of-means"),
    attack_fraction: float = 0.05,
    n_users: int = 2_000,
    horizon: int = 48,
    epsilon: float = 1.0,
    w: int = 10,
    n_shards: int = 1,
    max_workers: Optional[int] = None,
    seed: int = 0,
) -> "Dict[str, Dict[str, Dict[str, Dict[str, Dict[str, float]]]]]":
    """Attack x defense sweep over scenario workloads.

    Every (scenario, algorithm, strategy, policy) combination runs as
    one scan cell: a benign and an attacked execution sharing every
    protocol seed, both aggregated under the cell's robust policy, so
    the reported ``manipulation_gain`` is exactly the shift the attack
    caused under that defense.

    Args:
        scenarios: preset names from the scenario registry.
        algorithms: online algorithm names to evaluate.
        strategies: attack strategies
            (:data:`repro.adversary.ATTACK_STRATEGIES`).
        policies: robust-policy kinds (:data:`repro.adversary.POLICIES`).
        attack_fraction: fraction of compromised users.
        n_users, horizon: population shape per run.
        epsilon, w: w-event privacy parameters.
        n_shards: user-shards per run.
        max_workers: worker processes (default: one per shard).
        seed: data/protocol root seed (the experiment harness's shared
            ``(seed, seed + 1)`` convention).

    Returns:
        ``{scenario: {algorithm: {strategy: {policy: {metric: value}}}}}``
        with metrics ``manipulation_gain``, ``mse`` (attacked run vs
        benign ground truth) and ``mse_benign``.
    """
    from .._validation import ensure_positive_int
    from ..scan import ScanCell
    from ..scan.orchestrator import run_cells

    n_users = ensure_positive_int(n_users, "n_users")
    n_shards = ensure_positive_int(n_shards, "n_shards")
    if not 0.0 < float(attack_fraction) <= 1.0:
        raise ValueError(
            f"attack_fraction must be in (0, 1], got {attack_fraction}"
        )
    scenario_names = list(dict.fromkeys(scenarios))
    algorithm_names = list(dict.fromkeys(algorithms))
    strategy_names = list(dict.fromkeys(strategies))
    policy_names = list(dict.fromkeys(policies))

    cells = []
    keys = []
    for scenario in scenario_names:
        for name in algorithm_names:
            for strategy in strategy_names:
                for policy in policy_names:
                    cells.append(
                        ScanCell(
                            index=len(cells),
                            kind="scenario",
                            algorithm=name,
                            epsilon=float(epsilon),
                            w=int(w),
                            data_seed=int(seed),
                            protocol_seed=int(seed) + 1,
                            scenario=scenario,
                            n_users=n_users,
                            horizon=int(horizon),
                            n_shards=n_shards,
                            engine="sharded",
                            attack_fraction=float(attack_fraction),
                            attack_strategy=strategy,
                            robust_policy=policy,
                        )
                    )
                    keys.append((scenario, name, strategy, policy))

    workers = n_shards if max_workers is None else max_workers
    cell_results, _ = run_cells(cells, workers=workers)

    out: Dict[str, Dict[str, Dict[str, Dict[str, Dict[str, float]]]]] = {}
    for cell, (scenario, name, strategy, policy) in zip(cells, keys):
        scalars = cell_results[cell.index].scalars
        out.setdefault(scenario, {}).setdefault(name, {}).setdefault(
            strategy, {}
        )[policy] = {
            "manipulation_gain": float(scalars["manipulation_gain"]),
            "mse": float(scalars["mse"]),
            "mse_benign": float(scalars["mse_benign"]),
        }
    return out
