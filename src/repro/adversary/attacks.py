"""Attack models: data poisoning against the w-event LDP protocol.

An :class:`AttackSpec` describes a coalition of compromised users — a
fixed fraction of the population, active from an onset slot — and the
strategy they use to skew the collector's population-mean estimates:

* ``extreme`` — *input* poisoning: compromised users replace their true
  values with the domain edge nearest the attacker's target before the
  mechanism runs.  The honest LDP mechanism still sanitizes the lie, so
  this is the weakest (and least detectable) strategy — every report
  stays within the mechanism's output range.
* ``targeted`` — *report* poisoning: compromised users bypass the
  mechanism entirely and upload the attacker's target value verbatim.
* ``random`` — *report* poisoning with out-of-domain values: compromised
  users upload values far outside the mechanism's output range (up to
  ``magnitude`` beyond the ``[0, 1]`` domain), the classic
  output-manipulation attack a clip-to-domain policy neutralizes.

Determinism contract: the attack never draws from the protocol's
generators.  Which users are compromised, and every injected value, is a
pure function of ``(attack seed, global user id[, slot])`` through a
stateless splitmix64 hash — so (a) a benign and an attacked run sharing
a protocol seed consume *identical* randomness streams (paired
comparison, the basis of the manipulation-gain metric), and (b) the
attack is invariant under any shard decomposition or execution mode
(sharded / live / gateway / distributed), preserving the runtime's
bit-identity guarantees.

Report-level strategies replace only reports the user would have sent
anyway (participation masks are respected), so attacked and benign runs
see identical per-slot report counts.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["ATTACK_STRATEGIES", "AttackSpec", "make_attack"]

#: the registered attack strategies (see the module docstring)
ATTACK_STRATEGIES = ("extreme", "random", "targeted")

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _splitmix64(x: "np.ndarray | np.uint64") -> np.ndarray:
    """One splitmix64 finalization round (vectorized, wrap-around)."""
    x = x + _GOLDEN
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def _hash64(seed: int, ids: np.ndarray, *extra: int) -> np.ndarray:
    """Stateless 64-bit hash of ``(seed, id, *extra)`` per element."""
    with np.errstate(over="ignore"):
        x = _splitmix64(np.uint64(int(seed)))
        x = _splitmix64(np.asarray(ids, dtype=np.uint64) ^ x)
        for tag in extra:
            x = _splitmix64(x ^ (np.uint64(int(tag)) * _GOLDEN))
        return x


def hash_uniform(seed: int, ids: np.ndarray, *extra: int) -> np.ndarray:
    """Deterministic uniforms in ``[0, 1)`` keyed by ``(seed, id, *extra)``."""
    return (_hash64(seed, ids, *extra) >> np.uint64(11)).astype(
        np.float64
    ) * 2.0**-53


@dataclass(frozen=True)
class AttackSpec:
    """One poisoning attack against the collection protocol.

    Args:
        fraction: fraction of the population that is compromised.
            Membership is decided per *global* user id by a seeded hash,
            so it is identical for every shard decomposition.
        strategy: ``extreme`` (input poisoning at the domain edge),
            ``targeted`` (report poisoning at ``target``), or ``random``
            (out-of-domain report poisoning up to ``magnitude`` beyond
            the domain).
        onset: first slot the attack is active at (global slot index).
        target: the attacker's preferred value.  ``extreme`` pushes
            inputs to the domain edge nearest it; ``targeted`` uploads
            it verbatim; ``random`` biases injections toward its side of
            the domain.
        magnitude: how far beyond the ``[0, 1]`` domain ``random``
            injections reach.
        seed: keys the compromise hash and every injected value —
            independent of the protocol seed by construction.
    """

    fraction: float = 0.05
    strategy: str = "extreme"
    onset: int = 0
    target: float = 1.0
    magnitude: float = 3.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= float(self.fraction) <= 1.0:
            raise ValueError(
                f"fraction must be in [0, 1], got {self.fraction}"
            )
        if self.strategy not in ATTACK_STRATEGIES:
            close = difflib.get_close_matches(
                str(self.strategy), ATTACK_STRATEGIES, n=3, cutoff=0.5
            )
            hint = (
                f"; did you mean {' or '.join(repr(c) for c in close)}?"
                if close
                else ""
            )
            known = ", ".join(ATTACK_STRATEGIES)
            raise ValueError(
                f"unknown attack strategy {self.strategy!r}{hint} "
                f"(known: {known})"
            )
        if int(self.onset) < 0:
            raise ValueError(f"onset must be non-negative, got {self.onset}")
        if not np.isfinite(self.target):
            raise ValueError(f"target must be finite, got {self.target}")
        if float(self.magnitude) < 0.0:
            raise ValueError(
                f"magnitude must be non-negative, got {self.magnitude}"
            )
        if int(self.seed) < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")

    # -- membership ------------------------------------------------------

    def active_at(self, t: int) -> bool:
        """Whether the attack injects anything at slot ``t``."""
        return self.fraction > 0.0 and int(t) >= int(self.onset)

    def compromised(self, user_ids: np.ndarray) -> np.ndarray:
        """Boolean compromise mask over *global* user ids (stateless)."""
        return hash_uniform(self.seed, user_ids) < float(self.fraction)

    @property
    def edge_value(self) -> float:
        """The ``[0, 1]`` domain edge nearest the attacker's target."""
        return 1.0 if float(self.target) >= 0.5 else 0.0

    # -- poisoning -------------------------------------------------------

    def poison_inputs(
        self, t: int, user_ids: np.ndarray, column: np.ndarray
    ) -> np.ndarray:
        """Apply input-level poisoning to one slot's true-value column.

        Only the ``extreme`` strategy acts here; the returned column is a
        copy when anything changed (the input is never mutated) and the
        poisoned values stay inside the mechanism's ``[0, 1]`` input
        domain.
        """
        if self.strategy != "extreme" or not self.active_at(t):
            return column
        mask = self.compromised(user_ids)
        if not mask.any():
            return column
        out = np.array(column, dtype=float)
        out[mask] = self.edge_value
        return out

    def poison_reports(
        self, t: int, user_ids: np.ndarray, reports: np.ndarray
    ) -> np.ndarray:
        """Apply report-level poisoning to one slot's sanitized reports.

        ``targeted`` and ``random`` act here, replacing only the *finite*
        entries of compromised users — a NaN report means the user did
        not participate at this slot, and the attack never changes who
        reports (attacked runs keep benign per-slot counts).
        """
        if self.strategy == "extreme" or not self.active_at(t):
            return reports
        mask = self.compromised(user_ids) & np.isfinite(reports)
        if not mask.any():
            return reports
        out = np.array(reports, dtype=float)
        if self.strategy == "targeted":
            out[mask] = float(self.target)
        else:  # random: out-of-domain, biased toward the target's side
            rows = np.flatnonzero(mask)
            h = _hash64(self.seed, np.asarray(user_ids)[rows], int(t), 1)
            u = (h >> np.uint64(11)).astype(np.float64) * 2.0**-53
            above = (
                (h & np.uint64(3)) != 0
                if float(self.target) >= 0.5
                else (h & np.uint64(3)) == 0
            )
            out[rows] = np.where(
                above,
                1.0 + u * float(self.magnitude),
                -u * float(self.magnitude),
            )
        return out

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload (checkpoint manifests, WAL run configs)."""
        return {
            "fraction": float(self.fraction),
            "strategy": str(self.strategy),
            "onset": int(self.onset),
            "target": float(self.target),
            "magnitude": float(self.magnitude),
            "seed": int(self.seed),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AttackSpec":
        return cls(
            fraction=float(data.get("fraction", 0.05)),
            strategy=str(data.get("strategy", "extreme")),
            onset=int(data.get("onset", 0)),
            target=float(data.get("target", 1.0)),
            magnitude=float(data.get("magnitude", 3.0)),
            seed=int(data.get("seed", 0)),
        )


def make_attack(
    attack: "AttackSpec | Dict[str, Any] | None",
) -> Optional[AttackSpec]:
    """Coerce an attack argument (spec, dict, or ``None``) to a spec."""
    if attack is None:
        return None
    if isinstance(attack, AttackSpec):
        return attack
    if isinstance(attack, dict):
        return AttackSpec.from_dict(attack)
    raise TypeError(
        f"attack must be an AttackSpec, a dict, or None, got "
        f"{type(attack).__name__}"
    )
