"""Privacy accounting substrate: composition, budgets, w-event auditing."""

from .accountant import (
    BatchWEventAccountant,
    PrivacyBudgetExceededError,
    WEventAccountant,
)
from .budget import (
    BudgetAllocation,
    parallel_composition,
    per_sample_budget,
    per_slot_budget,
    samples_per_window,
    sequential_composition,
)
from .definitions import are_w_neighboring, differing_span, make_w_neighbor
from .models import EventLevel, PrivacyModel, UserLevel, WEvent

__all__ = [
    "PrivacyModel",
    "EventLevel",
    "UserLevel",
    "WEvent",
    "WEventAccountant",
    "BatchWEventAccountant",
    "PrivacyBudgetExceededError",
    "BudgetAllocation",
    "sequential_composition",
    "parallel_composition",
    "per_slot_budget",
    "per_sample_budget",
    "samples_per_window",
    "are_w_neighboring",
    "differing_span",
    "make_w_neighbor",
]
