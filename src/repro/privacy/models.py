"""Stream-privacy models: event-level, user-level, and w-event allocation.

Section I and VII of the paper position w-event LDP between the two
classical extremes.  This module makes the three models first-class
budget *allocators*, so any algorithm (or analysis) can ask "what budget
does slot ``t`` get under model M for a horizon of ``T`` slots?" and the
trade-offs become executable:

* :class:`EventLevel` — every slot gets the full ``eps`` (strongest
  utility, protects only single events);
* :class:`UserLevel` — the worst case: ``eps`` is split across the whole
  horizon by sequential composition, ``eps / T`` per slot;
* :class:`WEvent` — ``eps / w`` per slot, protecting any ``w`` consecutive
  slots with the full budget.
"""

from __future__ import annotations

import abc

from .._validation import ensure_epsilon, ensure_positive_int, ensure_window

__all__ = ["PrivacyModel", "EventLevel", "UserLevel", "WEvent"]


class PrivacyModel(abc.ABC):
    """A rule mapping (slot, horizon) to a per-slot budget."""

    def __init__(self, epsilon: float) -> None:
        self.epsilon = ensure_epsilon(epsilon)

    @abc.abstractmethod
    def per_slot_budget(self, horizon: int) -> float:
        """Budget each slot may spend for a stream of ``horizon`` slots."""

    @abc.abstractmethod
    def protected_span(self, horizon: int) -> int:
        """Length of the longest fully-protected span of slots."""

    def describe(self, horizon: int) -> str:
        """One-line human-readable summary for a given horizon."""
        return (
            f"{type(self).__name__}: {self.per_slot_budget(horizon):.4g} per slot, "
            f"protects {self.protected_span(horizon)} consecutive slots"
        )


class EventLevel(PrivacyModel):
    """Independent ``eps`` per slot — utility-maximal, weakest protection."""

    def per_slot_budget(self, horizon: int) -> float:
        ensure_positive_int(horizon, "horizon")
        return self.epsilon

    def protected_span(self, horizon: int) -> int:
        ensure_positive_int(horizon, "horizon")
        return 1


class UserLevel(PrivacyModel):
    """Whole-stream protection via sequential composition: ``eps / T``."""

    def per_slot_budget(self, horizon: int) -> float:
        return self.epsilon / ensure_positive_int(horizon, "horizon")

    def protected_span(self, horizon: int) -> int:
        return ensure_positive_int(horizon, "horizon")


class WEvent(PrivacyModel):
    """``eps`` inside any sliding window of ``w`` slots: ``eps / w``."""

    def __init__(self, epsilon: float, w: int) -> None:
        super().__init__(epsilon)
        self.w = ensure_window(w)

    def per_slot_budget(self, horizon: int) -> float:
        ensure_positive_int(horizon, "horizon")
        return self.epsilon / self.w

    def protected_span(self, horizon: int) -> int:
        ensure_positive_int(horizon, "horizon")
        return min(self.w, horizon)
