"""Sliding-window privacy accountant enforcing w-event LDP at runtime.

Every stream algorithm in this library routes its per-slot budget spends
through a :class:`WEventAccountant`.  The accountant maintains the exact
spend at every time slot and raises :class:`PrivacyBudgetExceededError`
the moment any window of ``w`` consecutive slots would exceed the total
budget — turning the paper's Theorems 3/4/6 into an executable invariant.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Union

import numpy as np

from .._validation import ensure_epsilon, ensure_positive_int, ensure_window

__all__ = ["WEventAccountant", "BatchWEventAccountant", "PrivacyBudgetExceededError"]

#: slack for floating-point accumulation across long streams
_TOLERANCE = 1e-9


class PrivacyBudgetExceededError(RuntimeError):
    """Raised when a charge would push a w-window above its total budget."""


class WEventAccountant:
    """Tracks per-slot budget spends over a sliding window of size ``w``.

    The accountant is strictly sequential: slots are charged in
    non-decreasing time order (multiple charges to the same slot compose
    sequentially, as Theorem 1 requires).

    Example:
        >>> acct = WEventAccountant(epsilon=1.0, w=2)
        >>> acct.charge(0, 0.5)
        >>> acct.charge(1, 0.5)
        >>> acct.window_spend(1)
        1.0
    """

    def __init__(self, epsilon: float, w: int) -> None:
        self.epsilon = ensure_epsilon(epsilon)
        self.w = ensure_window(w)
        self._spends: List[float] = []
        self._window: Deque[float] = deque(maxlen=self.w)
        self._window_total = 0.0

    @property
    def current_slot(self) -> int:
        """Index of the most recently charged slot (-1 before any charge)."""
        return len(self._spends) - 1

    def charge(self, t: int, epsilon: float) -> None:
        """Record a spend of ``epsilon`` at time slot ``t``.

        Slots must be visited in order; skipped slots implicitly spend 0
        (e.g. BA-SW approximation slots that publish nothing new).

        Raises:
            PrivacyBudgetExceededError: if the containing window would
                exceed the total budget.
            ValueError: if ``t`` precedes the current slot.
        """
        spend = float(epsilon)
        if not (spend >= 0) or spend == float("inf"):  # rejects NaN too
            raise ValueError(
                f"epsilon spend must be non-negative and finite, got {spend}"
            )
        if t < self.current_slot:
            raise ValueError(
                f"slots must be charged in order: got t={t} after "
                f"t={self.current_slot}"
            )
        while self.current_slot < t:
            self._advance(0.0)
        # Compose with whatever this slot already spent.
        new_slot_total = self._spends[t] + spend
        prospective = self._window_total - self._window[-1] + new_slot_total
        if prospective > self.epsilon + _TOLERANCE:
            raise PrivacyBudgetExceededError(
                f"charging {spend:.6g} at slot {t} would raise the window "
                f"spend to {prospective:.6g} > budget {self.epsilon:.6g} "
                f"(w={self.w})"
            )
        self._window_total = prospective
        self._window[-1] = new_slot_total
        self._spends[t] = new_slot_total

    def _advance(self, spend: float) -> None:
        """Open a new slot with the given initial spend."""
        if len(self._window) == self.w:
            self._window_total -= self._window[0]
        self._window.append(spend)
        self._window_total += spend
        self._spends.append(spend)

    def window_spend(self, t: Optional[int] = None) -> float:
        """Total spend of the window ending at slot ``t`` (default: latest)."""
        if t is None:
            t = self.current_slot
        if t < 0 or t > self.current_slot:
            raise ValueError(f"slot {t} has not been charged yet")
        start = max(0, t - self.w + 1)
        return float(sum(self._spends[start : t + 1]))

    def slot_spend(self, t: int) -> float:
        """Spend recorded at an individual slot."""
        if t < 0 or t > self.current_slot:
            raise ValueError(f"slot {t} has not been charged yet")
        return self._spends[t]

    def max_window_spend(self) -> float:
        """Maximum spend over all windows charged so far (audit helper)."""
        if not self._spends:
            return 0.0
        best = 0.0
        running = 0.0
        window: Deque[float] = deque(maxlen=self.w)
        for spend in self._spends:
            if len(window) == self.w:
                running -= window[0]
            window.append(spend)
            running += spend
            best = max(best, running)
        return best

    def assert_valid(self) -> None:
        """Re-audit the full history; raises if any window overspent."""
        worst = self.max_window_spend()
        if worst > self.epsilon + _TOLERANCE:
            raise PrivacyBudgetExceededError(
                f"audit failed: max window spend {worst:.6g} exceeds "
                f"budget {self.epsilon:.6g}"
            )


class BatchWEventAccountant:
    """Population-wide w-event ledger: one row of spends per user.

    The vectorized protocol engine charges a whole population slice per
    slot, so the accountant keeps its sliding-window state as ``(n_users,)``
    arrays instead of scalars: a circular ``(w, n_users)`` buffer of the
    last ``w`` per-slot spends plus running window totals.  Semantics match
    ``n_users`` independent :class:`WEventAccountant` instances charged in
    lockstep (tested), at a per-slot cost of O(n_users) NumPy work instead
    of O(n_users) Python calls.

    Unlike the scalar accountant, slots are always charged in strictly
    increasing order via :meth:`charge_next` — the vectorized protocol
    never revisits a slot, and non-participating users simply spend 0.

    The w-event invariant and the audit only need O(w * n_users) state
    (the circular window plus a running per-user maximum); the full
    per-slot ledger kept for :meth:`user_spends`/:meth:`spends_matrix`
    grows with the horizon, so pass ``record_history=False`` for
    unbounded streams at production scale.
    """

    def __init__(
        self,
        epsilon: float,
        w: int,
        n_users: int,
        record_history: bool = True,
    ) -> None:
        self.epsilon = ensure_epsilon(epsilon)
        self.w = ensure_window(w)
        self.n_users = ensure_positive_int(n_users, "n_users")
        self.record_history = bool(record_history)
        self._window = np.zeros((self.w, self.n_users))
        self._window_total = np.zeros(self.n_users)
        self._max_window = np.zeros(self.n_users)
        self._history: List[np.ndarray] = []
        self._t = 0

    @property
    def current_slot(self) -> int:
        """Index of the most recently charged slot (-1 before any charge)."""
        return self._t - 1

    def charge_next(self, spends: Union[float, np.ndarray]) -> None:
        """Charge the next slot with per-user spends (scalar broadcasts).

        Raises:
            PrivacyBudgetExceededError: if any user's window of ``w``
                consecutive slots would exceed the total budget.
            ValueError: on negative spends or a shape mismatch.
        """
        vec = np.broadcast_to(
            np.asarray(spends, dtype=float), (self.n_users,)
        ).copy()
        # NaN would otherwise slip past a `min() < 0` check and poison the
        # window totals, silently disabling every future overspend check.
        if vec.size and not np.all((vec >= 0) & np.isfinite(vec)):
            raise ValueError(
                "epsilon spends must be non-negative and finite, "
                f"got min {vec.min():.6g}"
            )
        t = self._t
        idx = t % self.w
        # Rows not yet written are zero, so eviction is a no-op before the
        # window first wraps.
        prospective = self._window_total - self._window[idx] + vec
        worst = prospective.max()
        if worst > self.epsilon + _TOLERANCE:
            offender = int(prospective.argmax())
            raise PrivacyBudgetExceededError(
                f"charging slot {t} would raise user {offender}'s window "
                f"spend to {worst:.6g} > budget {self.epsilon:.6g} "
                f"(w={self.w})"
            )
        self._window[idx] = vec
        self._window_total = prospective
        np.maximum(self._max_window, prospective, out=self._max_window)
        if self.record_history:
            self._history.append(vec)
        self._t += 1

    def _require_history(self) -> None:
        if not self.record_history:
            raise RuntimeError(
                "per-slot ledger queries need record_history=True "
                "(disabled to bound memory on unbounded streams)"
            )

    def spends_matrix(self) -> np.ndarray:
        """Full ``(T, n_users)`` spend history (copy)."""
        self._require_history()
        if not self._history:
            return np.zeros((0, self.n_users))
        return np.stack(self._history)

    def user_spends(self, user: int) -> np.ndarray:
        """One user's per-slot spend series — comparable to the scalar
        accountant's ledger for equivalence testing."""
        self._require_history()
        if not 0 <= user < self.n_users:
            raise ValueError(f"user must be in [0, {self.n_users}), got {user}")
        return np.array([slot[user] for slot in self._history])

    def window_spend(self, t: Optional[int] = None) -> np.ndarray:
        """Per-user spend of the window ending at slot ``t`` (default latest)."""
        if t is None or t == self.current_slot:
            if self.current_slot < 0:
                raise ValueError("no slot has been charged yet")
            return self._window_total.copy()
        self._require_history()
        if t < 0 or t > self.current_slot:
            raise ValueError(f"slot {t} has not been charged yet")
        start = max(0, t - self.w + 1)
        return np.sum(self._history[start : t + 1], axis=0)

    def max_window_spend(self) -> np.ndarray:
        """Per-user maximum over all windows charged so far.

        Maintained incrementally, so the audit is O(n_users) regardless
        of horizon or history retention.
        """
        return self._max_window.copy()

    def assert_valid(self) -> None:
        """Audit every window charged so far; raises on any overspend."""
        peak = self._max_window.max() if self._max_window.size else 0.0
        if peak > self.epsilon + _TOLERANCE:
            offender = int(self._max_window.argmax())
            raise PrivacyBudgetExceededError(
                f"audit failed: user {offender}'s max window spend "
                f"{peak:.6g} exceeds budget {self.epsilon:.6g}"
            )
