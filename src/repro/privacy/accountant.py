"""Sliding-window privacy accountant enforcing w-event LDP at runtime.

Every stream algorithm in this library routes its per-slot budget spends
through a :class:`WEventAccountant`.  The accountant maintains the exact
spend at every time slot and raises :class:`PrivacyBudgetExceededError`
the moment any window of ``w`` consecutive slots would exceed the total
budget — turning the paper's Theorems 3/4/6 into an executable invariant.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from .._validation import ensure_epsilon, ensure_window

__all__ = ["WEventAccountant", "PrivacyBudgetExceededError"]

#: slack for floating-point accumulation across long streams
_TOLERANCE = 1e-9


class PrivacyBudgetExceededError(RuntimeError):
    """Raised when a charge would push a w-window above its total budget."""


class WEventAccountant:
    """Tracks per-slot budget spends over a sliding window of size ``w``.

    The accountant is strictly sequential: slots are charged in
    non-decreasing time order (multiple charges to the same slot compose
    sequentially, as Theorem 1 requires).

    Example:
        >>> acct = WEventAccountant(epsilon=1.0, w=2)
        >>> acct.charge(0, 0.5)
        >>> acct.charge(1, 0.5)
        >>> acct.window_spend(1)
        1.0
    """

    def __init__(self, epsilon: float, w: int) -> None:
        self.epsilon = ensure_epsilon(epsilon)
        self.w = ensure_window(w)
        self._spends: List[float] = []
        self._window: Deque[float] = deque(maxlen=self.w)
        self._window_total = 0.0

    @property
    def current_slot(self) -> int:
        """Index of the most recently charged slot (-1 before any charge)."""
        return len(self._spends) - 1

    def charge(self, t: int, epsilon: float) -> None:
        """Record a spend of ``epsilon`` at time slot ``t``.

        Slots must be visited in order; skipped slots implicitly spend 0
        (e.g. BA-SW approximation slots that publish nothing new).

        Raises:
            PrivacyBudgetExceededError: if the containing window would
                exceed the total budget.
            ValueError: if ``t`` precedes the current slot.
        """
        spend = float(epsilon)
        if spend < 0:
            raise ValueError(f"epsilon spend must be non-negative, got {spend}")
        if t < self.current_slot:
            raise ValueError(
                f"slots must be charged in order: got t={t} after "
                f"t={self.current_slot}"
            )
        while self.current_slot < t:
            self._advance(0.0)
        # Compose with whatever this slot already spent.
        new_slot_total = self._spends[t] + spend
        prospective = self._window_total - self._window[-1] + new_slot_total
        if prospective > self.epsilon + _TOLERANCE:
            raise PrivacyBudgetExceededError(
                f"charging {spend:.6g} at slot {t} would raise the window "
                f"spend to {prospective:.6g} > budget {self.epsilon:.6g} "
                f"(w={self.w})"
            )
        self._window_total = prospective
        self._window[-1] = new_slot_total
        self._spends[t] = new_slot_total

    def _advance(self, spend: float) -> None:
        """Open a new slot with the given initial spend."""
        if len(self._window) == self.w:
            self._window_total -= self._window[0]
        self._window.append(spend)
        self._window_total += spend
        self._spends.append(spend)

    def window_spend(self, t: Optional[int] = None) -> float:
        """Total spend of the window ending at slot ``t`` (default: latest)."""
        if t is None:
            t = self.current_slot
        if t < 0 or t > self.current_slot:
            raise ValueError(f"slot {t} has not been charged yet")
        start = max(0, t - self.w + 1)
        return float(sum(self._spends[start : t + 1]))

    def slot_spend(self, t: int) -> float:
        """Spend recorded at an individual slot."""
        if t < 0 or t > self.current_slot:
            raise ValueError(f"slot {t} has not been charged yet")
        return self._spends[t]

    def max_window_spend(self) -> float:
        """Maximum spend over all windows charged so far (audit helper)."""
        if not self._spends:
            return 0.0
        best = 0.0
        running = 0.0
        window: Deque[float] = deque(maxlen=self.w)
        for spend in self._spends:
            if len(window) == self.w:
                running -= window[0]
            window.append(spend)
            running += spend
            best = max(best, running)
        return best

    def assert_valid(self) -> None:
        """Re-audit the full history; raises if any window overspent."""
        worst = self.max_window_spend()
        if worst > self.epsilon + _TOLERANCE:
            raise PrivacyBudgetExceededError(
                f"audit failed: max window spend {worst:.6g} exceeds "
                f"budget {self.epsilon:.6g}"
            )
