"""Privacy-budget primitives: composition theorems and budget splitting.

Implements the two composition theorems from Section II-A of the paper and
the per-slot allocation rules used throughout: w-event streaming assigns
``eps / w`` per time slot (Theorems 3 and 4) and PP-S assigns
``eps / n_w`` per in-window sample (Theorem 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from .._validation import ensure_epsilon, ensure_positive_int, ensure_window

__all__ = [
    "sequential_composition",
    "parallel_composition",
    "per_slot_budget",
    "per_sample_budget",
    "samples_per_window",
    "BudgetAllocation",
]


def sequential_composition(epsilons: Iterable[float]) -> float:
    """Total budget of mechanisms applied to the *same* data (Theorem 1)."""
    values = [ensure_epsilon(e, "epsilon") for e in epsilons]
    if not values:
        raise ValueError("sequential_composition requires at least one epsilon")
    return float(sum(values))


def parallel_composition(epsilons: Iterable[float]) -> float:
    """Total budget of mechanisms on *disjoint* data (Theorem 2)."""
    values = [ensure_epsilon(e, "epsilon") for e in epsilons]
    if not values:
        raise ValueError("parallel_composition requires at least one epsilon")
    return float(max(values))


def per_slot_budget(epsilon: float, w: int) -> float:
    """``eps / w`` — the per-time-slot budget of IPP/APP/CAPP."""
    return ensure_epsilon(epsilon) / ensure_window(w)


def samples_per_window(w: int, segment_length: int) -> int:
    """Worst-case number of sampled uploads inside any ``w``-slot window.

    Sample positions sit one per segment, ``segment_length`` slots apart, so
    any window of ``w`` consecutive slots contains at most
    ``ceil(w / segment_length)`` of them.
    """
    w = ensure_window(w)
    segment_length = ensure_positive_int(segment_length, "segment_length")
    return math.ceil(w / segment_length)


def per_sample_budget(epsilon: float, w: int, segment_length: int) -> float:
    """``eps / n_w`` — Theorem 6's per-sample budget for PP-S."""
    n_w = samples_per_window(w, segment_length)
    return ensure_epsilon(epsilon) / n_w


@dataclass(frozen=True)
class BudgetAllocation:
    """A named split of a total budget across components.

    Used by baselines (e.g. BA-SW splits each slot's budget between a
    dissimilarity probe and publication) and by the multi-dimensional
    Budget-Split strategy.
    """

    total: float
    parts: "tuple[float, ...]"

    def __post_init__(self) -> None:
        ensure_epsilon(self.total, "total")
        if not self.parts:
            raise ValueError("allocation must have at least one part")
        for part in self.parts:
            ensure_epsilon(part, "part")
        if sum(self.parts) > self.total * (1.0 + 1e-9):
            raise ValueError(
                f"allocation parts sum to {sum(self.parts):.6g} "
                f"> total {self.total:.6g}"
            )

    @staticmethod
    def even_split(total: float, n_parts: int) -> "BudgetAllocation":
        """Split ``total`` evenly into ``n_parts`` components."""
        total = ensure_epsilon(total, "total")
        n_parts = ensure_positive_int(n_parts, "n_parts")
        return BudgetAllocation(total, tuple([total / n_parts] * n_parts))

    @staticmethod
    def weighted_split(total: float, weights: Sequence[float]) -> "BudgetAllocation":
        """Split ``total`` proportionally to positive ``weights``."""
        total = ensure_epsilon(total, "total")
        if not weights:
            raise ValueError("weights must be non-empty")
        if any(weight <= 0 for weight in weights):
            raise ValueError("weights must be strictly positive")
        norm = float(sum(weights))
        return BudgetAllocation(total, tuple(total * w / norm for w in weights))
