"""Formal-definition helpers: w-neighboring streams (Definition 2).

These utilities exist to make the privacy model testable: property tests
generate neighboring pairs and verify both the neighboring predicate and
(empirically) the mechanisms' probability-ratio bounds.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import ensure_stream, ensure_window

__all__ = ["are_w_neighboring", "differing_span", "make_w_neighbor"]


def differing_span(
    stream_a: Sequence[float],
    stream_b: Sequence[float],
    atol: float = 0.0,
) -> Optional["tuple[int, int]"]:
    """Return ``(first, last)`` indices where the streams differ, or None.

    ``atol`` allows treating nearly-equal values as equal when streams went
    through floating-point pipelines.
    """
    a = ensure_stream(stream_a, "stream_a")
    b = ensure_stream(stream_b, "stream_b")
    if a.shape != b.shape:
        raise ValueError(
            f"streams must have equal length, got {a.size} and {b.size}"
        )
    diff = np.flatnonzero(np.abs(a - b) > atol)
    if diff.size == 0:
        return None
    return int(diff[0]), int(diff[-1])


def are_w_neighboring(
    stream_a: Sequence[float],
    stream_b: Sequence[float],
    w: int,
    atol: float = 0.0,
) -> bool:
    """Definition 2: all differing elements fit in ``w`` consecutive slots."""
    w = ensure_window(w)
    span = differing_span(stream_a, stream_b, atol)
    if span is None:
        return True
    first, last = span
    return (last - first + 1) <= w


def make_w_neighbor(
    stream: Sequence[float],
    w: int,
    start: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Produce a w-neighboring stream differing on ``[start, start + w)``.

    Replaced values are fresh uniform draws in ``[0, 1]``; useful for
    privacy property tests.
    """
    arr = ensure_stream(stream)
    w = ensure_window(w)
    if not 0 <= start < arr.size:
        raise ValueError(f"start must index the stream, got {start}")
    rng = rng if rng is not None else np.random.default_rng()
    end = min(start + w, arr.size)
    neighbor = arr.copy()
    neighbor[start:end] = rng.random(end - start)
    return neighbor
