"""``python -m repro`` entry point — delegates to the experiments CLI."""

from .experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
