"""Length-prefixed binary framing for the report-ingestion gateway.

Every message on a gateway connection is one *frame*:

.. code-block:: text

    offset  size  field
    0       2     magic  b"RG"
    2       1     wire-format version (currently 1)
    3       1     frame type
    4       4     payload length (big-endian u32)
    8       n     payload

Control frames (``HELLO``, ``HELLO_ACK``, ``BATCH_ACK``, ``REJECT``,
``FIN``, ``FIN_ACK``, ``ERROR``, and the distributed-tier
``WORKER_HELLO``, ``WORKER_HELLO_ACK``, ``SLOT_FINAL``, ``STATE_ACK``)
carry a UTF-8 JSON object payload; ``BATCH`` frames carry the binary
report-batch payload and ``SHARD_STATE`` frames the binary shard-state
payload from :mod:`repro.protocol.messages`.  The full layout and the
version negotiation rules are documented in ``docs/wire_format.md``.

The reader is deliberately strict: wrong magic, an unknown version, an
unknown frame type, or an oversized payload raise :class:`WireError`
immediately — a gateway serving untrusted clients must fail a damaged
connection, never guess at resynchronization.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional, Tuple

from ..protocol.messages import (
    ShardSlotState,
    decode_report_batch,
    decode_shard_state,
    encode_report_batch,
    encode_shard_state,
)
from ..service.events import ReportBatch

__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "MAX_PAYLOAD_BYTES",
    "FrameType",
    "WireError",
    "encode_frame",
    "encode_control",
    "encode_batch_frame",
    "encode_shard_state_frame",
    "decode_control",
    "decode_batch_payload",
    "decode_shard_state_payload",
    "read_frame",
]

#: two-byte frame preamble ("Report Gateway")
WIRE_MAGIC = b"RG"

#: the wire-format version this module speaks
WIRE_VERSION = 1

#: default refusal bound for a single frame's payload — large enough for
#: ~4M reports per batch, small enough that a corrupt length prefix
#: cannot make the server allocate unbounded memory
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

_FRAME_HEADER = struct.Struct(">2sBBI")


class FrameType:
    """Frame-type codes (one byte on the wire)."""

    HELLO = 1
    HELLO_ACK = 2
    BATCH = 3
    BATCH_ACK = 4
    REJECT = 5
    FIN = 6
    FIN_ACK = 7
    ERROR = 8
    # Distributed tier (worker -> root aggregation stream).  These ride
    # the same wire version: endpoints that predate them reject the
    # codes as unknown frame types, which is the correct failure for a
    # worker pointed at a plain gateway.
    WORKER_HELLO = 9
    WORKER_HELLO_ACK = 10
    SHARD_STATE = 11
    SLOT_FINAL = 12
    STATE_ACK = 13

    #: every code this version understands
    ALL = frozenset(range(1, 14))


class WireError(ValueError):
    """A frame violated the wire format (magic, version, type, size)."""


def encode_frame(frame_type: int, payload: bytes = b"") -> bytes:
    """One complete frame: header plus payload."""
    if frame_type not in FrameType.ALL:
        raise WireError(f"unknown frame type {frame_type}")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise WireError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame bound"
        )
    return _FRAME_HEADER.pack(WIRE_MAGIC, WIRE_VERSION, frame_type, len(payload)) + payload


def encode_control(frame_type: int, **fields: Any) -> bytes:
    """A control frame with a JSON object payload."""
    return encode_frame(frame_type, json.dumps(fields).encode("utf-8"))


def decode_control(payload: bytes) -> Dict[str, Any]:
    """Parse a control frame's JSON payload (must be an object)."""
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"control payload is not valid JSON: {error}") from error
    if not isinstance(record, dict):
        raise WireError("control payload must be a JSON object")
    return record


def encode_batch_frame(batch: ReportBatch) -> bytes:
    """Frame one report batch for the wire."""
    payload = encode_report_batch(batch.shard, batch.t, batch.user_ids, batch.values)
    return encode_frame(FrameType.BATCH, payload)


def decode_batch_payload(payload: bytes, copy: bool = True) -> ReportBatch:
    """Decode a ``BATCH`` payload into a validated :class:`ReportBatch`.

    ``copy=False`` is the server's hot-path mode: the batch arrays are
    read-only zero-copy views into the received frame (see
    :func:`repro.protocol.messages.decode_report_batch`).
    """
    try:
        shard, t, user_ids, values = decode_report_batch(payload, copy=copy)
        return ReportBatch(shard=shard, t=t, user_ids=user_ids, values=values)
    except (ValueError, TypeError) as error:
        raise WireError(f"malformed batch payload: {error}") from error


def encode_shard_state_frame(state: ShardSlotState) -> bytes:
    """Frame one finalized shard-slot state for the upstream wire."""
    payload = encode_shard_state(
        state.shard,
        state.t,
        state.n_reports,
        state.total,
        values=state.values,
        user_ids=state.user_ids,
    )
    return encode_frame(FrameType.SHARD_STATE, payload)


def decode_shard_state_payload(payload: bytes, copy: bool = False) -> ShardSlotState:
    """Decode a ``SHARD_STATE`` payload (zero-copy views by default)."""
    try:
        return decode_shard_state(payload, copy=copy)
    except (ValueError, TypeError) as error:
        raise WireError(f"malformed shard-state payload: {error}") from error


async def read_frame(
    reader: asyncio.StreamReader,
    max_payload: int = MAX_PAYLOAD_BYTES,
) -> Optional[Tuple[int, bytes]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF in the middle of a frame (a connection dropped mid-send) raises
    ``asyncio.IncompleteReadError`` — the caller decides whether that is
    a client fault or an expected disconnect.
    """
    try:
        header = await reader.readexactly(_FRAME_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise
    magic, version, frame_type, length = _FRAME_HEADER.unpack(header)
    if magic != WIRE_MAGIC:
        raise WireError(f"bad frame magic {magic!r} (expected {WIRE_MAGIC!r})")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version}; this endpoint speaks "
            f"version {WIRE_VERSION}"
        )
    if frame_type not in FrameType.ALL:
        raise WireError(f"unknown frame type {frame_type}")
    if length > max_payload:
        raise WireError(
            f"frame payload of {length} bytes exceeds the {max_payload}-byte bound"
        )
    payload = await reader.readexactly(length) if length else b""
    return frame_type, payload
