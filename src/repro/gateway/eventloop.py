"""Event-loop selection for the gateway tier (optional uvloop).

The gateway, fleet, and distributed drivers all enter asyncio through
:func:`gateway_run`, which honours the ``REPRO_GATEWAY_LOOP``
environment variable:

``asyncio``  (default)
    the stdlib event loop.
``uvloop``
    install uvloop's loop policy; falls back to asyncio with a warning
    when uvloop is not importable (it is an optional extra, never a
    hard dependency).
``auto``
    use uvloop when importable, silently use asyncio otherwise.

Selection changes scheduling only — never results.  The determinism
contract (bit-equality against ``run_protocol_sharded``) holds under
either loop because batch order per shard is fixed by the protocol, and
the slot barrier serializes ingestion.
"""

from __future__ import annotations

import asyncio
import os
import warnings
from typing import Any, Coroutine, Optional, TypeVar

__all__ = ["LOOP_ENV_VAR", "install_event_loop", "gateway_run"]

#: environment variable naming the event-loop implementation
LOOP_ENV_VAR = "REPRO_GATEWAY_LOOP"

_T = TypeVar("_T")


def install_event_loop(choice: Optional[str] = None) -> str:
    """Install the requested loop policy; returns ``"uvloop"`` or ``"asyncio"``.

    ``choice`` overrides the environment variable; ``None``/empty means
    ``auto``.  An explicit ``uvloop`` request degrades to asyncio with a
    ``RuntimeWarning`` when the module is missing; any other value
    raises ``ValueError``.
    """
    if choice is None:
        choice = os.environ.get(LOOP_ENV_VAR, "")
    choice = (choice or "auto").strip().lower()
    if choice not in ("auto", "asyncio", "uvloop"):
        raise ValueError(
            f"{LOOP_ENV_VAR} must be 'asyncio', 'uvloop', or 'auto', "
            f"got {choice!r}"
        )
    if choice == "asyncio":
        asyncio.set_event_loop_policy(None)
        return "asyncio"
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        if choice == "uvloop":
            warnings.warn(
                f"{LOOP_ENV_VAR}=uvloop requested but uvloop is not "
                "installed; falling back to asyncio",
                RuntimeWarning,
                stacklevel=2,
            )
        asyncio.set_event_loop_policy(None)
        return "asyncio"
    uvloop.install()
    return "uvloop"


def gateway_run(coro: Coroutine[Any, Any, _T], loop: Optional[str] = None) -> _T:
    """``asyncio.run`` behind the configured loop policy."""
    install_event_loop(loop)
    return asyncio.run(coro)
