"""Operational counters for the report-ingestion gateway.

One :class:`GatewayMetrics` instance per server, mutated only from the
server's event loop (asyncio serializes the handlers, so no locking).
``snapshot()`` renders everything JSON-safe for the CLI's
``--metrics-out`` artifact and the CI gateway smoke job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

__all__ = ["GatewayMetrics"]


@dataclass
class GatewayMetrics:
    """Everything the gateway counts while serving.

    ``batches_accepted`` / ``reports_accepted`` count payloads that
    reached the pipeline barrier; duplicates (idempotent resends after a
    reconnect) and sheds (load-shedding rejections that the client
    retries) are counted separately and never double-ingested.
    """

    connections_opened: int = 0
    connections_closed: int = 0
    frames_received: int = 0
    frames_sent: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    batches_accepted: int = 0
    reports_accepted: int = 0
    duplicates: int = 0
    sheds: int = 0
    protocol_errors: int = 0
    slots_finalized: int = 0
    started_at: float = field(default_factory=time.perf_counter)
    finished_at: float = 0.0
    slot_latencies: List[float] = field(default_factory=list, repr=False)

    def mark_finished(self) -> None:
        """Stamp the end of the run (first call wins)."""
        if not self.finished_at:
            self.finished_at = time.perf_counter()

    @property
    def elapsed_seconds(self) -> float:
        end = self.finished_at or time.perf_counter()
        return max(end - self.started_at, 0.0)

    @property
    def reports_per_second(self) -> float:
        elapsed = self.elapsed_seconds
        if elapsed <= 0.0:
            return float("inf")
        return self.reports_accepted / elapsed

    def latency_quantile(self, q: float) -> float:
        """A quantile of slot-finalization latency observed at the gateway."""
        if not self.slot_latencies:
            return 0.0
        return float(np.quantile(np.asarray(self.slot_latencies), q))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view of every counter plus derived rates."""
        return {
            "connections_opened": self.connections_opened,
            "connections_closed": self.connections_closed,
            "frames_received": self.frames_received,
            "frames_sent": self.frames_sent,
            "bytes_received": self.bytes_received,
            "bytes_sent": self.bytes_sent,
            "batches_accepted": self.batches_accepted,
            "reports_accepted": self.reports_accepted,
            "duplicates": self.duplicates,
            "sheds": self.sheds,
            "protocol_errors": self.protocol_errors,
            "slots_finalized": self.slots_finalized,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "reports_per_second": round(self.reports_per_second, 1),
            "p50_slot_latency_seconds": round(self.latency_quantile(0.50), 6),
            "p99_slot_latency_seconds": round(self.latency_quantile(0.99), 6),
        }
