"""Operational counters for the report-ingestion gateway.

One :class:`GatewayMetrics` instance per server, mutated only from the
server's event loop (asyncio serializes the handlers, so no locking).
``snapshot()`` renders everything JSON-safe for the CLI's
``--metrics-out`` artifact and the CI gateway smoke job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

__all__ = ["GatewayMetrics", "aggregate_worker_metrics"]

#: snapshot keys that sum meaningfully across workers
_ADDITIVE_KEYS = (
    "connections_opened",
    "connections_closed",
    "frames_received",
    "frames_sent",
    "bytes_received",
    "bytes_sent",
    "batches_accepted",
    "reports_accepted",
    "duplicates",
    "sheds",
    "protocol_errors",
    "slots_finalized",
)


@dataclass
class GatewayMetrics:
    """Everything the gateway counts while serving.

    ``batches_accepted`` / ``reports_accepted`` count payloads that
    reached the pipeline barrier; duplicates (idempotent resends after a
    reconnect) and sheds (load-shedding rejections that the client
    retries) are counted separately and never double-ingested.
    """

    connections_opened: int = 0
    connections_closed: int = 0
    frames_received: int = 0
    frames_sent: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    batches_accepted: int = 0
    reports_accepted: int = 0
    duplicates: int = 0
    sheds: int = 0
    protocol_errors: int = 0
    slots_finalized: int = 0
    started_at: float = field(default_factory=time.perf_counter)
    finished_at: float = 0.0
    slot_latencies: List[float] = field(default_factory=list, repr=False)

    def mark_finished(self) -> None:
        """Stamp the end of the run (first call wins)."""
        if not self.finished_at:
            self.finished_at = time.perf_counter()

    @property
    def elapsed_seconds(self) -> float:
        end = self.finished_at or time.perf_counter()
        return max(end - self.started_at, 0.0)

    @property
    def reports_per_second(self) -> float:
        elapsed = self.elapsed_seconds
        if elapsed <= 0.0:
            return float("inf")
        return self.reports_accepted / elapsed

    def latency_quantile(self, q: float) -> float:
        """A quantile of slot-finalization latency observed at the gateway."""
        if not self.slot_latencies:
            return 0.0
        return float(np.quantile(np.asarray(self.slot_latencies), q))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view of every counter plus derived rates."""
        return {
            "connections_opened": self.connections_opened,
            "connections_closed": self.connections_closed,
            "frames_received": self.frames_received,
            "frames_sent": self.frames_sent,
            "bytes_received": self.bytes_received,
            "bytes_sent": self.bytes_sent,
            "batches_accepted": self.batches_accepted,
            "reports_accepted": self.reports_accepted,
            "duplicates": self.duplicates,
            "sheds": self.sheds,
            "protocol_errors": self.protocol_errors,
            "slots_finalized": self.slots_finalized,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "reports_per_second": round(self.reports_per_second, 1),
            "p50_slot_latency_seconds": round(self.latency_quantile(0.50), 6),
            "p99_slot_latency_seconds": round(self.latency_quantile(0.99), 6),
        }


def aggregate_worker_metrics(
    workers: Dict[str, Dict[str, Any]],
) -> Dict[str, Any]:
    """Fold per-worker metric snapshots into a tree-wide summary.

    Returns ``{"workers": <per-worker snapshots>, "totals": ...}``:
    counters sum; the aggregate rate divides the summed reports by the
    *slowest* worker's elapsed time (workers serve concurrently, so the
    straggler bounds the tree's wall-clock).  Latency quantiles cannot
    be recombined from per-worker quantiles — the totals carry the
    worst worker's p50/p99 as a conservative bound.
    """
    totals: Dict[str, Any] = {key: 0 for key in _ADDITIVE_KEYS}
    max_elapsed = 0.0
    worst_p50 = worst_p99 = 0.0
    for snapshot in workers.values():
        for key in _ADDITIVE_KEYS:
            totals[key] += int(snapshot.get(key, 0))
        max_elapsed = max(max_elapsed, float(snapshot.get("elapsed_seconds", 0.0)))
        worst_p50 = max(
            worst_p50, float(snapshot.get("p50_slot_latency_seconds", 0.0))
        )
        worst_p99 = max(
            worst_p99, float(snapshot.get("p99_slot_latency_seconds", 0.0))
        )
    totals["n_workers"] = len(workers)
    totals["elapsed_seconds"] = round(max_elapsed, 6)
    totals["reports_per_second"] = round(
        totals["reports_accepted"] / max_elapsed if max_elapsed > 0.0 else 0.0, 1
    )
    totals["worst_p50_slot_latency_seconds"] = round(worst_p50, 6)
    totals["worst_p99_slot_latency_seconds"] = round(worst_p99, 6)
    return {"workers": dict(workers), "totals": totals}
