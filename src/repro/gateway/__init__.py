"""Network ingestion gateway: the transport tier of the serving stack.

The paper's protocol assumes untrusted clients uploading perturbed
reports to a collector over a network; this package is that missing
layer.  :mod:`~repro.gateway.wire` defines a versioned, length-prefixed
binary frame format (documented in ``docs/wire_format.md``);
:mod:`~repro.gateway.server` is the asyncio TCP server that validates
uploads and feeds them into the live
:class:`~repro.service.IngestionPipeline` slot barrier;
:mod:`~repro.gateway.client` and :mod:`~repro.gateway.fleet` drive N
simulated user-shards as concurrent connections with arrival jitter,
load-shed retries, and reconnect-on-drop;
:mod:`~repro.gateway.metrics` counts what the server saw (every counter
is documented in ``docs/operations.md``).

Durability: pass ``wal_dir`` to :func:`run_gateway` (or ``--wal`` to
``python -m repro gateway-serve``) and the server appends every
accepted batch plus per-slot commits to the :mod:`repro.wal`
write-ahead log *before* acknowledging, so a ``kill -9`` mid-slot is
recoverable bit-exactly — :mod:`~repro.gateway.chaos` is the harness
that proves it by killing the server at random points mid-run.

Layer stack with the gateway in place::

    client fleet  -- TCP -->  gateway server  -->  ingestion pipeline
    (shard feeds)             (validate/shed)      (slot barrier)
                                  |                     |
                              write-ahead log   collector shards -> queries
                              (crash recovery)

Gateway-served estimates are bit-identical to
:func:`~repro.runtime.run_protocol_sharded` for the same seed and shard
decomposition — the network can reorder, stall, shed, drop, and even
crash the server without ever changing an answer.
"""

from .chaos import ChaosReport, CrashEvent, pipeline_fingerprint, run_chaos
from .client import GatewayClient, GatewayError
from .distributed import (
    DistributedRunResult,
    GatewayWorker,
    RootAggregator,
    ShardStateAggregator,
    WorkerSpec,
    recover_worker,
    run_distributed,
    run_distributed_fleet_async,
    run_distributed_processes,
    shard_ranges,
    worker_for_shard,
)
from .eventloop import LOOP_ENV_VAR, gateway_run, install_event_loop
from .fleet import (
    GatewayRunResult,
    NetemSpec,
    ShardUploadReport,
    drive_feed,
    run_fleet,
    run_fleet_async,
    run_gateway,
)
from .metrics import GatewayMetrics, aggregate_worker_metrics
from .server import GatewayServer
from .wire import (
    MAX_PAYLOAD_BYTES,
    WIRE_MAGIC,
    WIRE_VERSION,
    FrameType,
    WireError,
)

__all__ = [
    "GatewayClient",
    "GatewayError",
    "GatewayMetrics",
    "GatewayServer",
    "GatewayRunResult",
    "NetemSpec",
    "ShardUploadReport",
    "drive_feed",
    "run_fleet",
    "run_fleet_async",
    "run_gateway",
    "ChaosReport",
    "CrashEvent",
    "run_chaos",
    "pipeline_fingerprint",
    "DistributedRunResult",
    "GatewayWorker",
    "RootAggregator",
    "ShardStateAggregator",
    "WorkerSpec",
    "recover_worker",
    "run_distributed",
    "run_distributed_fleet_async",
    "run_distributed_processes",
    "shard_ranges",
    "worker_for_shard",
    "aggregate_worker_metrics",
    "LOOP_ENV_VAR",
    "gateway_run",
    "install_event_loop",
    "FrameType",
    "WireError",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "MAX_PAYLOAD_BYTES",
]
