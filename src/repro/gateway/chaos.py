"""Chaos harness: random crash/recovery injection against the gateway.

:func:`run_chaos` serves a population through the WAL-enabled gateway
while repeatedly killing the server at randomly chosen accepted-batch
counts.  Each "kill" goes through :meth:`GatewayServer.crash` — the
in-process equivalent of ``kill -9`` (connections torn, nothing
flushed) — after which the harness:

1. fingerprints the abandoned server's in-memory pipeline state,
2. recovers a fresh pipeline from the WAL directory with
   :func:`~repro.wal.recover_pipeline`,
3. asserts the recovered state equals the abandoned state **bit for
   bit** (collector sums/counts, published estimates, barrier clock,
   batches still buffered at the barrier, and the per-shard resume
   slots), and
4. restarts the server on the same port with the recovered resume
   slots.

The client fleet lives through every crash: connections error out,
clients back off, reconnect, learn their ``resume_slot`` from the
``HELLO_ACK`` handshake, and re-upload only what the recovered server
does not hold.  Because the shard engines (and their privacy ledgers)
never leave the clients, no mechanism is re-run and no budget is
re-spent, however many times the server dies.

After the horizon completes, the final estimates and ledgers are
compared against an uninterrupted offline
:func:`~repro.runtime.run_protocol_sharded` reference — the whole chaos
run must be indistinguishable, bitwise, from a run where nothing ever
crashed.  ``drops`` additionally injects client-side partition faults
(upload-then-drop-before-ack) on top of the server crashes.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime.sharding import run_protocol_sharded
from ..service.feeds import shard_feeds
from ..service.pipeline import IngestionPipeline, LiveRunResult
from ..wal import WriteAheadLog, recover_pipeline
from .eventloop import gateway_run
from .fleet import NetemSpec, ShardUploadReport, drive_feed
from .server import GatewayServer

__all__ = ["CrashEvent", "ChaosReport", "run_chaos", "pipeline_fingerprint"]


def pipeline_fingerprint(pipeline: IngestionPipeline) -> Dict[str, Any]:
    """Bit-exact digest of everything a pipeline knows.

    Floats go through ``repr`` (distinguishing every bit pattern except
    NaN payloads, which the pipeline never produces) and arrays through
    ``tobytes``, so two fingerprints compare equal iff the states are
    bit-identical.
    """
    return {
        "next_slot": pipeline.next_slot,
        "n_reports": pipeline.collector.n_reports,
        "slot_sums": {
            t: repr(total) for t, total in pipeline.collector.state.slot_sums.items()
        },
        "slot_counts": dict(pipeline.collector.state.slot_counts),
        "slots": [
            (est.t, est.n_reports, None if est.mean is None else repr(est.mean))
            for est in pipeline.slot_estimates
        ],
        "pending": [
            (b.t, b.shard, b.user_ids.tobytes(), b.values.tobytes())
            for b in pipeline.pending_batches()
        ],
    }


@dataclass
class CrashEvent:
    """One server kill and the recovery that followed it."""

    crash_number: int
    target_batches: int
    accepted_at_crash: int
    recovered_next_slot: int
    replayed_batches: int
    skipped_batches: int
    next_expected: List[int]
    state_bit_equal: bool


@dataclass
class ChaosReport:
    """Everything one :func:`run_chaos` campaign produced."""

    result: LiveRunResult = field(repr=False)
    crashes: List[CrashEvent]
    shard_reports: List[ShardUploadReport]
    port: int
    offline_bit_equal: bool
    ledgers_bit_equal: bool

    @property
    def n_crashes(self) -> int:
        return len(self.crashes)

    @property
    def total_reconnects(self) -> int:
        return sum(report.reconnects for report in self.shard_reports)

    def assert_bit_equal(self) -> None:
        """Every crash recovered bit-exactly and the final run matches
        the uninterrupted offline reference (raises otherwise)."""
        broken = [c.crash_number for c in self.crashes if not c.state_bit_equal]
        if broken:
            raise AssertionError(f"recovery diverged after crashes {broken}")
        if not self.offline_bit_equal:
            raise AssertionError(
                "final estimates differ from the uninterrupted offline run"
            )
        if not self.ledgers_bit_equal:
            raise AssertionError(
                "privacy ledgers differ from the uninterrupted offline run"
            )


def _choose_crash_points(
    n_crashes: int, total_batches: int, seed: int
) -> List[int]:
    """Distinct accepted-batch counts to kill the server at, ascending."""
    n_crashes = int(n_crashes)
    if n_crashes < 1:
        raise ValueError(f"n_crashes must be >= 1, got {n_crashes}")
    candidates = np.arange(1, total_batches)  # never before the first batch
    if candidates.size == 0:
        raise ValueError("population too small to crash mid-run")
    rng = np.random.default_rng(np.random.SeedSequence([int(seed), 0xC4A5]))
    count = min(n_crashes, candidates.size)
    points = rng.choice(candidates, size=count, replace=False)
    return sorted(int(p) for p in points)


def run_chaos(
    source,
    wal_dir: str,
    n_crashes: int = 20,
    algorithm: "str | Sequence[str]" = "capp",
    epsilon: float = 1.0,
    w: int = 10,
    smoothing_window: Optional[int] = 3,
    participation: "float | Sequence[float] | None" = None,
    seed: int = 0,
    chunk_size: Optional[int] = None,
    fsync: str = "commit",
    drops: Optional[Dict[int, Iterable[int]]] = None,
    netem: Optional[NetemSpec] = None,
    jitter: float = 0.0,
    crash_seed: int = 0,
    backoff: float = 0.01,
    host: str = "127.0.0.1",
    complete_timeout: float = 120.0,
    workers: int = 1,
) -> ChaosReport:
    """Serve a population while randomly killing the WAL-backed server.

    Args:
        source: population source (matrix or StreamSource), as in
            :func:`~repro.gateway.run_gateway`.
        wal_dir: fresh directory for the run's write-ahead log.
        n_crashes: how many random kill points to draw (capped by the
            number of batches in the run minus one).
        algorithm, epsilon, w, smoothing_window, participation, seed,
            chunk_size: protocol parameters, as everywhere else.
        fsync: WAL fsync policy (crash recovery works under all three —
            ``kill -9`` never loses page-cache writes).
        drops: extra partition injection — ``{shard: [slots]}`` whose
            uploads tear the connection before reading the ack.
        netem: scheduled link impairment
            (:class:`~repro.gateway.fleet.NetemSpec`) layered on top of
            the server crashes — delay windows stall uploads, partition
            windows make the network unreachable before the frame is
            written.
        jitter: max per-slot client arrival delay in seconds.
        crash_seed: seeds the kill-point draw (independent of ``seed``
            so the protocol randomness never shifts with the fault plan).
        backoff: client reconnect backoff in seconds.
        host: listen address (loopback for tests).
        complete_timeout: bound on waiting for the final slot.
        workers: must be 1 — the chaos harness drills exactly one
            WAL-backed server (fingerprint/recover/compare assumes a
            single pipeline); a multi-worker tree is drilled per worker
            with :func:`~repro.gateway.recover_worker`.

    Returns:
        A :class:`ChaosReport`; call :meth:`ChaosReport.assert_bit_equal`
        to enforce the bit-equality contract in one line.
    """
    if workers != 1:
        raise ValueError(
            "run_chaos drills a single WAL-backed gateway; for a "
            "multi-worker tree, crash and recover one worker at a time "
            "via recover_worker (workers must be 1)"
        )
    if WriteAheadLog.exists(wal_dir):
        raise ValueError(f"{wal_dir} already holds a WAL; chaos runs start fresh")
    feeds = shard_feeds(
        source,
        algorithm=algorithm,
        epsilon=epsilon,
        w=w,
        participation=participation,
        seed=seed,
        chunk_size=chunk_size,
    )
    if not feeds:
        raise ValueError("source yielded no chunks; nothing to serve")
    horizon = feeds[0].horizon
    n_shards = len(feeds)
    crash_points = _choose_crash_points(n_crashes, n_shards * horizon, crash_seed)
    metadata = {
        "algorithm": algorithm if isinstance(algorithm, str) else "per-user",
        "seed": int(seed),
        "chaos": True,
    }
    # Reconnect budget: every server kill, every injected drop, and
    # every partition-window slot can cost each client one reconnect,
    # with headroom for shed retries.
    max_reconnects = len(crash_points) + sum(
        len(list(slots)) for slots in (drops or {}).values()
    ) + (netem.partition_slot_count() if netem is not None else 0) + 10

    def fresh_pipeline() -> IngestionPipeline:
        return IngestionPipeline(
            n_shards=n_shards,
            horizon=horizon,
            epsilon=epsilon,
            w=w,
            smoothing_window=smoothing_window,
            track_users=False,
            keep_reports=True,
        )

    async def _campaign() -> Tuple[LiveRunResult, List[ShardUploadReport], List[CrashEvent], int]:
        pipeline = fresh_pipeline()
        pipeline.attach_wal(WriteAheadLog(wal_dir, fsync=fsync))
        server = GatewayServer(pipeline, host=host, port=0)
        await server.start(metadata=metadata)
        port = server.port

        fleet = [
            asyncio.ensure_future(
                drive_feed(
                    feed,
                    host,
                    port,
                    jitter=jitter,
                    rng=np.random.default_rng(
                        np.random.SeedSequence([int(seed), feed.shard])
                    )
                    if jitter > 0.0
                    else None,
                    drop_slots=(drops or {}).get(feed.shard, ()),
                    netem=netem,
                    max_reconnects=max_reconnects,
                    connect_attempts=200,
                    backoff=backoff,
                )
            )
            for feed in feeds
        ]

        crashes: List[CrashEvent] = []
        accepted_before = 0
        try:
            for number, target in enumerate(crash_points, start=1):
                # Every batch must be accepted for the run to complete,
                # so the accepted counter always reaches the target —
                # even if the horizon finishes in the same poll window
                # (a post-completion crash is just another recovery).
                while accepted_before + server.metrics.batches_accepted < target:
                    failed = [
                        task.exception()
                        for task in fleet
                        if task.done() and not task.cancelled() and task.exception()
                    ]
                    if failed:
                        raise failed[0]
                    await asyncio.sleep(0.001)
                await server.crash()  # kill -9: no flush, no goodbyes
                # The pipeline is frozen now — this is the exact state
                # the "killed" process abandoned.
                accepted_before += server.metrics.batches_accepted
                expected = pipeline_fingerprint(pipeline)
                expected_next = list(server._next_expected)

                recovery = recover_pipeline(wal_dir)
                recovered = pipeline_fingerprint(recovery.pipeline)
                crashes.append(
                    CrashEvent(
                        crash_number=number,
                        target_batches=target,
                        accepted_at_crash=accepted_before,
                        recovered_next_slot=recovery.pipeline.next_slot,
                        replayed_batches=recovery.replayed_batches,
                        skipped_batches=recovery.skipped_batches,
                        next_expected=list(recovery.next_expected),
                        state_bit_equal=(
                            recovered == expected
                            and recovery.next_expected == expected_next
                        ),
                    )
                )
                pipeline = recovery.pipeline
                pipeline.attach_wal(WriteAheadLog(wal_dir, fsync=fsync))
                server = GatewayServer(
                    pipeline,
                    host=host,
                    port=port,
                    next_expected=recovery.next_expected,
                )
                await server.start(metadata=metadata)

            reports = list(await asyncio.gather(*fleet))
            await server.wait_complete(timeout=complete_timeout)
        finally:
            for task in fleet:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*fleet, return_exceptions=True)
            await server.stop()
        result = server.result(feeds=feeds)
        wal = pipeline.wal
        if wal is not None:
            wal.close()
        return result, reports, crashes, port

    result, reports, crashes, port = gateway_run(_campaign())
    result.assert_valid()

    offline = run_protocol_sharded(
        source,
        algorithm=algorithm,
        epsilon=epsilon,
        w=w,
        smoothing_window=smoothing_window,
        participation=participation,
        seed=seed,
        chunk_size=chunk_size,
        track_users=False,
        keep_reports=True,
    )
    offline_bit_equal = (
        result.collector.state.slot_sums == offline.collector.state.slot_sums
        and result.collector.state.slot_counts
        == offline.collector.state.slot_counts
        and result.collector.n_reports == offline.collector.n_reports
        and np.array_equal(
            result.population_mean_series(),
            offline.collector.population_mean_series(),
        )
    )
    live_spend = np.zeros(offline.n_users)
    for feed in feeds:
        for group in feed.engine.groups:
            live_spend[group.indices] = group.engine.accountant.max_window_spend()
    ledgers_bit_equal = np.array_equal(live_spend, offline.max_window_spend())

    return ChaosReport(
        result=result,
        crashes=crashes,
        shard_reports=reports,
        port=port,
        offline_bit_equal=offline_bit_equal,
        ledgers_bit_equal=ledgers_bit_equal,
    )
