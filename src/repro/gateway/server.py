"""Asyncio TCP report-ingestion server feeding the live pipeline.

:class:`GatewayServer` is the network front of the serving stack: it
accepts untrusted client connections speaking the length-prefixed wire
format of :mod:`repro.gateway.wire`, validates every upload's shape and
slot against the run configuration, and submits decoded
:class:`~repro.service.events.ReportBatch`\\ es into an
:class:`~repro.service.IngestionPipeline`.  The pipeline's slot barrier
re-establishes deterministic cross-shard ingestion order, so a
gateway-served run is **bit-identical** to
:func:`~repro.runtime.run_protocol_sharded` for the same seed and shard
decomposition — network timing, connection interleaving, and reconnects
can change latencies, never answers.

Fault tolerance and admission control
-------------------------------------

* **Authentication: none.**  The gateway trusts transport identity as
  little as the paper's collector does — every payload is validated
  structurally (magic, version, frame type, dtype, shape, slot range,
  shard range, in-order upload), and the privacy guarantees never
  depended on the collector being honest about *values* anyway.
* **Backpressure / load shedding.**  A batch more than
  ``max_slot_skew`` slots ahead of the barrier clock is *shed*: the
  server answers ``REJECT`` with a ``retry_after_seconds`` hint instead
  of buffering it, so one stalled shard can never make the others park
  an unbounded horizon in server memory.  The barrier holds at most
  ``n_shards * (max_slot_skew + 1)`` batches.  The laggard shard itself
  is never shed (its batch is the clock's next requirement), which keeps
  shedding deadlock-free.
* **Duplicate uploads.**  Each shard must upload slots in order; a
  batch for a slot the server already holds from that shard is answered
  with an idempotent duplicate ack and not re-ingested.  This is what
  makes client reconnects safe: a client that lost an ack resends, and
  the ``HELLO_ACK``'s ``resume_slot`` tells a reconnecting client where
  to pick up.
* **Disconnects.**  A connection dropping mid-slot loses nothing — the
  shard's engine state lives client-side, delivered batches stay at the
  barrier, and the reconnect handshake resumes the upload exactly where
  it stopped.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional

from ..service.events import ReportBatch
from ..service.pipeline import IngestionPipeline, LiveRunResult
from .metrics import GatewayMetrics
from .wire import (
    MAX_PAYLOAD_BYTES,
    FrameType,
    WireError,
    decode_batch_payload,
    decode_control,
    encode_control,
    read_frame,
)

__all__ = ["GatewayServer"]


class GatewayServer:
    """TCP ingestion front for one pipeline run.

    Args:
        pipeline: the slot-barrier pipeline the run feeds (its
            ``n_shards``/``horizon`` define what clients may upload).
        host, port: listen address; port ``0`` binds an ephemeral port
            (read it back from :attr:`port` after :meth:`start`).
        retry_after: the shed hint, in seconds — how long a rejected
            client should wait before resending.
        max_payload_bytes: per-frame payload refusal bound.
        metrics: counter sheet (a fresh one is created when omitted).
        next_expected: per-shard resume slots for a server restarted on
            a recovered pipeline (take them from
            :attr:`~repro.wal.WalRecovery.next_expected`); reconnecting
            clients are told to resume exactly where the crashed server
            left off.  Omit for a fresh run (every shard starts at 0).
    """

    def __init__(
        self,
        pipeline: IngestionPipeline,
        host: str = "127.0.0.1",
        port: int = 0,
        retry_after: float = 0.02,
        max_payload_bytes: int = MAX_PAYLOAD_BYTES,
        metrics: Optional[GatewayMetrics] = None,
        next_expected: Optional[List[int]] = None,
    ) -> None:
        if not isinstance(pipeline, IngestionPipeline):
            raise TypeError(
                f"pipeline must be an IngestionPipeline, got {type(pipeline).__name__}"
            )
        self.pipeline = pipeline
        self.host = host
        self._requested_port = int(port)
        self.retry_after = float(retry_after)
        self.max_payload_bytes = int(max_payload_bytes)
        self.metrics = metrics if metrics is not None else GatewayMetrics()
        # Next slot each shard is expected to upload (shards upload in
        # slot order, so this is both the duplicate filter and the
        # reconnect resume point).
        if next_expected is None:
            self._next_expected: List[int] = [0] * pipeline.n_shards
        else:
            resumed = [int(slot) for slot in next_expected]
            if len(resumed) != pipeline.n_shards:
                raise ValueError(
                    f"next_expected names {len(resumed)} shards but the "
                    f"pipeline serves {pipeline.n_shards}"
                )
            if any(not 0 <= slot <= pipeline.horizon for slot in resumed):
                raise ValueError(
                    f"next_expected slots {resumed} must lie in "
                    f"[0, {pipeline.horizon}]"
                )
            self._next_expected = resumed
        self._server: Optional[asyncio.base_events.Server] = None
        self._handlers: "set[asyncio.Task]" = set()
        self._done = asyncio.Event()
        self._started = 0.0
        self._crashed = False

    # -- lifecycle -------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self, metadata: Optional[Dict[str, Any]] = None) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self._requested_port
        )
        self._started = time.perf_counter()
        meta = {"transport": "tcp", "gateway": True}
        meta.update(metadata or {})
        self.pipeline.start_run(meta)

    async def wait_complete(self, timeout: Optional[float] = None) -> None:
        """Block until every slot in the horizon has finalized."""
        if self.pipeline.complete:
            return
        await asyncio.wait_for(self._done.wait(), timeout)

    async def stop(self, drain_timeout: float = 5.0) -> None:
        """Stop accepting connections and close the listener.

        In-flight connection handlers get ``drain_timeout`` seconds to
        finish their goodbyes (``FIN``/``FIN_ACK``) before being
        cancelled — an abrupt listener close must not turn a clean run
        completion into client-side connection errors.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._handlers:
            _, pending = await asyncio.wait(self._handlers, timeout=drain_timeout)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    async def crash(self) -> None:
        """Simulate ``kill -9``: drop everything, flush nothing.

        The listener and every connection are torn down with no
        goodbyes, and the attached write-ahead log (if any) is abandoned
        without an fsync — exactly the state a killed process leaves
        behind, since WAL appends are unbuffered (already in the OS page
        cache) and everything else lives in process memory.  The chaos
        harness (:mod:`repro.gateway.chaos`) crashes servers through
        this hook and asserts that recovery from the WAL reproduces the
        abandoned in-memory state bit for bit.
        """
        # Close + cancel synchronously before the first await: once this
        # coroutine starts, not one more batch may reach the pipeline
        # (a cancelled handler raises at its next await instead of
        # resuming, and a handler whose task never got to run bails on
        # the crashed flag), so the caller's last observation of the
        # pipeline is exactly the state the "killed" process left behind.
        self._crashed = True
        if self._server is not None:
            self._server.close()
        for task in list(self._handlers):
            task.cancel()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        wal = self.pipeline.wal
        if wal is not None:
            wal.abandon()

    def result(self, feeds: Optional[List[Any]] = None) -> LiveRunResult:
        """Package the completed run (pipeline must have finished).

        ``feeds`` attaches the shard feeds (and their budget ledgers)
        when the fleet ran in-process — loopback runs can then audit the
        population-wide w-event guarantee exactly like ``run_live``.
        """
        self.metrics.mark_finished()
        self.pipeline.finish()
        return self.pipeline.build_result(
            self.metrics.elapsed_seconds,
            feeds=feeds,
            extra={"gateway_metrics": self.metrics.snapshot()},
        )

    # -- connection handling ---------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter, frame: bytes) -> None:
        writer.write(frame)
        self.metrics.frames_sent += 1
        self.metrics.bytes_sent += len(frame)
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._crashed:
            # Accepted just before crash(), scheduled just after: a dead
            # process answers nobody — drop the connection unserved.
            transport = writer.transport
            if transport is not None:
                transport.abort()
            return
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        self.metrics.connections_opened += 1
        shard: Optional[int] = None
        try:
            while True:
                frame = await read_frame(reader, self.max_payload_bytes)
                if frame is None:
                    break
                frame_type, payload = frame
                self.metrics.frames_received += 1
                self.metrics.bytes_received += len(payload) + 8
                if frame_type == FrameType.HELLO:
                    shard = await self._handle_hello(writer, payload)
                elif frame_type == FrameType.BATCH:
                    await self._handle_batch(writer, shard, payload)
                elif frame_type == FrameType.FIN:
                    await self._send(writer, encode_control(FrameType.FIN_ACK))
                    break
                else:
                    raise WireError(f"unexpected frame type {frame_type} from client")
        except (WireError, ValueError) as error:
            # Protocol violation: name the fault, then drop the client.
            self.metrics.protocol_errors += 1
            try:
                await self._send(
                    writer, encode_control(FrameType.ERROR, message=str(error))
                )
            except (ConnectionError, RuntimeError):
                pass
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client dropped mid-frame; reconnect handshake recovers
        except asyncio.CancelledError:
            # stop()/crash() tore this connection down on purpose; end
            # quietly (asyncio's connection_made callback would log a
            # still-cancelled task as a loop error).
            pass
        finally:
            self.metrics.connections_closed += 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, RuntimeError, asyncio.CancelledError):
                pass

    async def _handle_hello(
        self, writer: asyncio.StreamWriter, payload: bytes
    ) -> int:
        hello = decode_control(payload)
        try:
            shard = int(hello["shard"])
        except (KeyError, TypeError, ValueError):
            raise WireError("HELLO must carry an integer 'shard' field") from None
        if not 0 <= shard < self.pipeline.n_shards:
            raise WireError(
                f"shard {shard} out of range; this run serves shards "
                f"0..{self.pipeline.n_shards - 1}"
            )
        await self._send(
            writer,
            encode_control(
                FrameType.HELLO_ACK,
                shard=shard,
                resume_slot=self._next_expected[shard],
                horizon=self.pipeline.horizon,
                n_shards=self.pipeline.n_shards,
            ),
        )
        return shard

    async def _handle_batch(
        self, writer: asyncio.StreamWriter, shard: Optional[int], payload: bytes
    ) -> None:
        if shard is None:
            raise WireError("BATCH before HELLO; handshake first")
        # Zero-copy decode: the batch arrays are read-only views into the
        # received frame.  Safe because the pipeline's collector copies
        # values on ingest and never mutates batch arrays in place.
        batch = decode_batch_payload(payload, copy=False)
        if batch.shard != shard:
            raise WireError(
                f"connection authenticated shard {shard} but uploaded a "
                f"batch for shard {batch.shard}"
            )
        if batch.t >= self.pipeline.horizon:
            raise WireError(
                f"slot {batch.t} is beyond the run horizon {self.pipeline.horizon}"
            )
        expected = self._next_expected[shard]
        if self.pipeline.has_batch(batch.t, batch.shard):
            # Resend after a lost ack (the batch is already buffered at
            # the barrier, or its slot finalized): acknowledge
            # idempotently.  Equivalent to ``batch.t < expected`` under
            # the in-order upload invariant, but asks the barrier itself.
            self.metrics.duplicates += 1
            await self._send(
                writer,
                encode_control(
                    FrameType.BATCH_ACK, t=batch.t, accepted=False, duplicate=True
                ),
            )
            return
        if batch.t > expected:
            raise WireError(
                f"shard {shard} uploaded slot {batch.t} before slot "
                f"{expected}; uploads must be in slot order"
            )
        if batch.t >= self.pipeline.next_slot + self.pipeline.max_slot_skew:
            # Load shedding: this shard is far ahead of the laggard.
            self.metrics.sheds += 1
            await self._send(
                writer,
                encode_control(
                    FrameType.REJECT, t=batch.t, retry_after_seconds=self.retry_after
                ),
            )
            return
        self._ingest(batch)
        await self._send(
            writer,
            encode_control(
                FrameType.BATCH_ACK, t=batch.t, accepted=True, duplicate=False
            ),
        )

    def _ingest(self, batch: ReportBatch) -> None:
        """Submit one validated batch; track finalizations and completion."""
        finalized = self.pipeline.submit(batch)
        self._next_expected[batch.shard] = batch.t + 1
        self.metrics.batches_accepted += 1
        self.metrics.reports_accepted += batch.n_reports
        if finalized:
            self.metrics.slots_finalized += len(finalized)
            self.metrics.slot_latencies.extend(
                self.pipeline.slot_latencies[-len(finalized):]
            )
        if self.pipeline.complete:
            self.metrics.mark_finished()
            self._done.set()
