"""Distributed gateway: worker shard servers behind a root aggregation tree.

The single-process gateway tops out at one GIL-bound event loop.  This
module scales the ingestion tier across processes while keeping the
repo's signature guarantee — the distributed result is *bit-identical*
to :func:`~repro.runtime.run_protocol_sharded` (and to the one-process
gateway) for the same seed and chunk decomposition:

.. code-block:: text

    clients (shard-affinity fleet)          workers              root
    shard 0 ─┐
    shard 1 ─┼─> GatewayWorker[0] ── SHARD_STATE/SLOT_FINAL ─┐
    shard 2 ─┐                                               ├─> RootAggregator
    shard 3 ─┼─> GatewayWorker[1] ── SHARD_STATE/SLOT_FINAL ─┘

Each :class:`GatewayWorker` owns a *contiguous* global shard range
``[shard_lo, shard_hi)`` and runs an ordinary
:class:`~repro.gateway.GatewayServer` + :class:`~repro.service.pipeline.
IngestionPipeline` slot barrier over its local shards.  When a slot
finalizes locally, the worker streams one ``SHARD_STATE`` frame per
global shard upstream (count, exact float64 slot sum, and — only when
the run keeps them — the raw values/user ids), closed by a
``SLOT_FINAL`` frame the root acknowledges.

The root (:class:`RootAggregator` over a :class:`ShardStateAggregator`)
is a second-level slot barrier: it buffers per-shard states until every
global shard has delivered slot ``t``, then folds them in **ascending
shard order** via :meth:`~repro.protocol.collector.CollectorShardState.
merge_in_place`.  Because each state carries the worker-computed
``float(segment.sum())`` bits (never recomputed at the root) and empty
shard-slots are barrier markers that are never merged, the root's fold
replays exactly the flat pipeline's operation sequence — float addition
is non-associative, so this, not "merge per-worker aggregates", is what
makes the tree bit-exact.

Workers keep an outbox of encoded upstream frames per finalized slot
until the root acknowledges it, so worker kills, reconnects, and
WAL-backed recovery (:func:`recover_worker`) resend idempotently; the
root's per-shard resume slots make duplicates no-ops.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..protocol.collector import Collector, CollectorShardState
from ..adversary.policies import RobustPolicy, make_policy
from ..protocol.messages import ShardSlotState
from ..service.events import ReportBatch, SlotEstimate
from ..service.feeds import ShardFeed, shard_feeds
from ..service.pipeline import IngestionPipeline, LiveRunResult
from .client import GatewayError
from .eventloop import gateway_run
from .fleet import NetemSpec, ShardUploadReport, drive_feed
from .metrics import GatewayMetrics, aggregate_worker_metrics
from .server import GatewayServer
from .wire import (
    MAX_PAYLOAD_BYTES,
    FrameType,
    WireError,
    decode_control,
    decode_shard_state_payload,
    encode_control,
    encode_shard_state_frame,
    read_frame,
)

__all__ = [
    "WorkerSpec",
    "DistributedRunResult",
    "ShardStateAggregator",
    "RootAggregator",
    "GatewayWorker",
    "recover_worker",
    "shard_ranges",
    "worker_for_shard",
    "run_distributed_fleet_async",
    "run_distributed",
    "run_distributed_processes",
]


# -- topology ------------------------------------------------------------


@dataclass(frozen=True)
class WorkerSpec:
    """One worker's place in the topology: its shard range and listener."""

    worker: int
    shard_lo: int
    shard_hi: int
    host: str = "127.0.0.1"
    port: int = 0

    @property
    def n_shards(self) -> int:
        return self.shard_hi - self.shard_lo


def shard_ranges(n_shards: int, n_workers: int) -> List[Tuple[int, int]]:
    """Contiguous, near-even ``[lo, hi)`` shard ranges for each worker."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be positive, got {n_workers}")
    if n_workers > n_shards:
        raise ValueError(
            f"{n_workers} workers cannot each own a shard of a "
            f"{n_shards}-shard run"
        )
    base, extra = divmod(n_shards, n_workers)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for i in range(n_workers):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def worker_for_shard(topology: Sequence[WorkerSpec], shard: int) -> WorkerSpec:
    """The worker owning a global shard (shard-affinity routing)."""
    for spec in topology:
        if spec.shard_lo <= shard < spec.shard_hi:
            return spec
    raise ValueError(f"no worker in the topology owns shard {shard}")


# -- root: pure aggregation barrier --------------------------------------


class ShardStateAggregator:
    """Second-level slot barrier folding per-shard states bit-exactly.

    Transport-free core of the root: :meth:`submit` buffers one
    :class:`~repro.protocol.messages.ShardSlotState` per (slot, global
    shard), and once all ``n_shards`` states for the next slot are
    present, folds them in ascending shard order — the same operation
    sequence (and therefore the same float bits) as the flat pipeline's
    :meth:`~repro.service.pipeline.IngestionPipeline._finalize`.
    """

    def __init__(
        self,
        n_shards: int,
        horizon: int,
        epsilon: float = 1.0,
        w: int = 10,
        smoothing_window: Optional[int] = 3,
        track_users: bool = False,
        keep_reports: bool = True,
        robust_policy=None,
    ) -> None:
        if n_shards < 1 or horizon < 1:
            raise ValueError("n_shards and horizon must be positive")
        self.n_shards = int(n_shards)
        self.horizon = int(horizon)
        self.epsilon = float(epsilon)
        self.w = int(w)
        self._policy: Optional[RobustPolicy] = make_policy(robust_policy)
        self.collector = Collector(
            epsilon_per_report=self.epsilon / self.w,
            smoothing_window=smoothing_window,
            track_users=track_users,
            keep_reports=keep_reports,
            robust_policy=self._policy,
        )
        self.slot_estimates: List[SlotEstimate] = []
        self._pending: Dict[int, Dict[int, ShardSlotState]] = {}
        self._first_seen: Dict[int, float] = {}
        self._latencies: List[float] = []
        self._next_slot = 0
        # Next slot expected from each global shard — the duplicate
        # filter and the reconnect resume point, exactly like the
        # gateway server's per-shard clock.
        self._state_next: List[int] = [0] * self.n_shards

    @property
    def next_slot(self) -> int:
        return self._next_slot

    @property
    def complete(self) -> bool:
        return self._next_slot >= self.horizon

    @property
    def slot_latencies(self) -> List[float]:
        return self._latencies

    def resume_slot(self, shard_lo: int, shard_hi: int) -> int:
        """Where a reconnecting worker should resume: the earliest slot
        any shard in its range has not yet delivered."""
        if not 0 <= shard_lo < shard_hi <= self.n_shards:
            raise ValueError(
                f"shard range [{shard_lo}, {shard_hi}) out of bounds for "
                f"{self.n_shards} shards"
            )
        return min(self._state_next[shard_lo:shard_hi])

    def has_state(self, t: int, shard: int) -> bool:
        """Whether (slot, shard) was already delivered (duplicate test)."""
        return t < self._state_next[shard]

    def submit(self, state: ShardSlotState) -> Tuple[bool, List[SlotEstimate]]:
        """Buffer one shard-slot state; finalize any slots it completes.

        Returns ``(accepted, finalized)`` — ``accepted`` is False for an
        idempotent duplicate resend.  Raises ``ValueError`` for
        out-of-range shards/slots, out-of-order delivery, or a state
        whose segments don't match the run's memory switches.
        """
        shard, t = state.shard, state.t
        if not 0 <= shard < self.n_shards:
            raise ValueError(
                f"state from shard {shard} but this run aggregates "
                f"shards 0..{self.n_shards - 1}"
            )
        if t >= self.horizon:
            raise ValueError(
                f"state for slot {t} is beyond the run horizon {self.horizon}"
            )
        if self.has_state(t, shard):
            return False, []
        expected = self._state_next[shard]
        if t != expected:
            raise ValueError(
                f"shard {shard} delivered slot {t} but slot {expected} "
                "is next — workers stream states in slot order"
            )
        if state.n_reports:
            if self.collector.keep_reports and state.values is None:
                raise ValueError(
                    f"slot {t} shard {shard}: this run keeps reports but "
                    "the state carries no values segment"
                )
            if self.collector.track_users and state.user_ids is None:
                raise ValueError(
                    f"slot {t} shard {shard}: this run tracks users but "
                    "the state carries no user-id segment"
                )
        self._pending.setdefault(t, {})[shard] = state
        self._first_seen.setdefault(t, time.perf_counter())
        self._state_next[shard] = t + 1
        finalized: List[SlotEstimate] = []
        while len(self._pending.get(self._next_slot, ())) == self.n_shards:
            finalized.append(self._finalize(self._next_slot))
        return True, finalized

    def _finalize(self, t: int) -> SlotEstimate:
        """Merge slot ``t``'s states in shard order and publish it."""
        waiting = self._pending.pop(t)
        for shard in sorted(waiting):
            state = waiting[shard]
            if state.n_reports:
                self.collector.merge_state(self._sub_state(state))
        count = self.collector.state.slot_counts.get(t, 0)
        mean = self.collector.population_mean(t) if count else None
        estimate = SlotEstimate(t=t, n_reports=count, mean=mean, answers={})
        self.slot_estimates.append(estimate)
        self._latencies.append(time.perf_counter() - self._first_seen.pop(t))
        self._next_slot = t + 1
        return estimate

    def _sub_state(self, state: ShardSlotState) -> CollectorShardState:
        """Lift one wire state into a mergeable single-slot shard state.

        The slot sum is the worker's exact bits; the values segment is
        copied out of the frame buffer (owning float64 memory, same bits)
        exactly like :meth:`CollectorShardState.add_slot_batch` does.
        """
        track_users = self.collector.track_users
        keep_reports = self.collector.keep_reports
        slot_values: Dict[int, List[Any]] = {}
        by_user: Dict[int, Dict[int, float]] = {}
        segment = None
        if state.values is not None and (keep_reports or track_users):
            segment = np.array(state.values, dtype=float)
        if keep_reports and segment is not None:
            slot_values[state.t] = [segment]
        if track_users and state.user_ids is not None and segment is not None:
            for uid, value in zip(state.user_ids.tolist(), segment.tolist()):
                by_user[int(uid)] = {state.t: value}
        # Workers apply the robust policy's report transform before
        # summing (see _encode_slot_frames), so the wire total is already
        # the policed fold; group labels are global shard indices, the
        # same grouping every other execution mode uses.
        group_sums: Dict[int, Dict[int, float]] = {}
        group_counts: Dict[int, Dict[int, int]] = {}
        if self._policy is not None and self._policy.uses_groups and state.n_reports:
            group_sums = {state.t: {state.shard: state.total}}
            group_counts = {state.t: {state.shard: state.n_reports}}
        return CollectorShardState(
            track_users=track_users,
            keep_reports=keep_reports,
            slot_sums={state.t: state.total},
            slot_counts={state.t: state.n_reports},
            slot_values=slot_values,
            by_user=by_user,
            n_reports=state.n_reports,
            robust_policy=self._policy,
            group_sums=group_sums,
            group_counts=group_counts,
        )

    def finish(self) -> None:
        if not self.complete:
            t = self._next_slot
            missing = sorted(
                set(range(self.n_shards)) - set(self._pending.get(t, ()))
            )
            raise RuntimeError(
                f"aggregation incomplete: slot {t} is still missing "
                f"states from shards {missing}"
            )

    def build_result(
        self, elapsed_seconds: float, feeds: Optional[List[ShardFeed]] = None
    ) -> LiveRunResult:
        """Package the completed aggregation as a standard run result."""
        self.finish()
        return LiveRunResult(
            collector=self.collector,
            slots=list(self.slot_estimates),
            horizon=self.horizon,
            n_shards=self.n_shards,
            epsilon=self.epsilon,
            w=self.w,
            elapsed_seconds=elapsed_seconds,
            slot_latencies=np.asarray(self._latencies, dtype=float),
            feeds=feeds,
        )


# -- root: TCP front -----------------------------------------------------


class RootAggregator:
    """TCP front for the aggregation tree: accepts workers, not clients.

    Speaks the distributed leg of the wire protocol — ``WORKER_HELLO``
    handshake (answering with the worker range's resume slot),
    ``SHARD_STATE`` / ``SLOT_FINAL`` streams, and a ``FIN`` that carries
    the worker's final metrics snapshot (surfaced in
    :attr:`worker_metrics` for the aggregated ``--metrics-out``
    artifact).  Workers connect over plain TCP, so the topology is
    multi-host-ready: nothing assumes fork or shared memory.
    """

    def __init__(
        self,
        aggregator: ShardStateAggregator,
        host: str = "127.0.0.1",
        port: int = 0,
        max_payload_bytes: int = MAX_PAYLOAD_BYTES,
        metrics: Optional[GatewayMetrics] = None,
    ) -> None:
        self.aggregator = aggregator
        self.host = host
        self._requested_port = int(port)
        self.max_payload_bytes = int(max_payload_bytes)
        self.metrics = metrics if metrics is not None else GatewayMetrics()
        self.worker_metrics: Dict[str, Dict[str, Any]] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._handlers: "set[asyncio.Task]" = set()
        self._done = asyncio.Event()

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("root aggregator not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("root aggregator already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self._requested_port
        )

    async def wait_complete(self, timeout: Optional[float] = None) -> None:
        if self.aggregator.complete:
            return
        await asyncio.wait_for(self._done.wait(), timeout)

    async def stop(self, drain_timeout: float = 5.0) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._handlers:
            _, pending = await asyncio.wait(self._handlers, timeout=drain_timeout)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    def result(self, feeds: Optional[List[ShardFeed]] = None) -> LiveRunResult:
        self.metrics.mark_finished()
        return self.aggregator.build_result(
            self.metrics.elapsed_seconds, feeds=feeds
        )

    async def _send(self, writer: asyncio.StreamWriter, frame: bytes) -> None:
        writer.write(frame)
        self.metrics.frames_sent += 1
        self.metrics.bytes_sent += len(frame)
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        self.metrics.connections_opened += 1
        worker: Optional[Tuple[int, int, int]] = None  # (id, lo, hi)
        try:
            while True:
                frame = await read_frame(reader, self.max_payload_bytes)
                if frame is None:
                    break
                frame_type, payload = frame
                self.metrics.frames_received += 1
                self.metrics.bytes_received += len(payload) + 8
                if frame_type == FrameType.WORKER_HELLO:
                    worker = await self._handle_worker_hello(writer, payload)
                elif frame_type == FrameType.SHARD_STATE:
                    self._handle_shard_state(worker, payload)
                elif frame_type == FrameType.SLOT_FINAL:
                    await self._handle_slot_final(writer, worker, payload)
                elif frame_type == FrameType.FIN:
                    self._handle_fin(worker, payload)
                    await self._send(writer, encode_control(FrameType.FIN_ACK))
                    break
                else:
                    raise WireError(
                        f"unexpected frame type {frame_type} from worker"
                    )
        except (WireError, ValueError) as error:
            self.metrics.protocol_errors += 1
            try:
                await self._send(
                    writer, encode_control(FrameType.ERROR, message=str(error))
                )
            except (ConnectionError, RuntimeError):
                pass
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # worker dropped mid-frame; its reconnect resumes
        except asyncio.CancelledError:
            pass
        finally:
            self.metrics.connections_closed += 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, RuntimeError, asyncio.CancelledError):
                pass

    async def _handle_worker_hello(
        self, writer: asyncio.StreamWriter, payload: bytes
    ) -> Tuple[int, int, int]:
        hello = decode_control(payload)
        try:
            worker_id = int(hello["worker"])
            lo = int(hello["shard_lo"])
            hi = int(hello["shard_hi"])
        except (KeyError, TypeError, ValueError):
            raise WireError(
                "WORKER_HELLO must carry integer 'worker', 'shard_lo', "
                "'shard_hi' fields"
            ) from None
        agg = self.aggregator
        if not 0 <= lo < hi <= agg.n_shards:
            raise WireError(
                f"worker {worker_id} claims shards [{lo}, {hi}) but this "
                f"run aggregates shards 0..{agg.n_shards - 1}"
            )
        declared = hello.get("horizon")
        if declared is not None and int(declared) != agg.horizon:
            raise WireError(
                f"worker {worker_id} runs horizon {declared} but the root "
                f"aggregates horizon {agg.horizon}"
            )
        await self._send(
            writer,
            encode_control(
                FrameType.WORKER_HELLO_ACK,
                worker=worker_id,
                resume_slot=agg.resume_slot(lo, hi),
                horizon=agg.horizon,
                n_shards=agg.n_shards,
            ),
        )
        return worker_id, lo, hi

    def _handle_shard_state(
        self, worker: Optional[Tuple[int, int, int]], payload: bytes
    ) -> None:
        if worker is None:
            raise WireError("SHARD_STATE before WORKER_HELLO; handshake first")
        _, lo, hi = worker
        state = decode_shard_state_payload(payload)
        if not lo <= state.shard < hi:
            raise WireError(
                f"connection registered shards [{lo}, {hi}) but delivered "
                f"a state for shard {state.shard}"
            )
        accepted, finalized = self.aggregator.submit(state)
        if not accepted:
            self.metrics.duplicates += 1
            return
        self.metrics.batches_accepted += 1
        self.metrics.reports_accepted += state.n_reports
        if finalized:
            self.metrics.slots_finalized += len(finalized)
            latencies = self.aggregator.slot_latencies
            self.metrics.slot_latencies.extend(latencies[-len(finalized):])
            if self.aggregator.complete:
                self._done.set()

    async def _handle_slot_final(
        self,
        writer: asyncio.StreamWriter,
        worker: Optional[Tuple[int, int, int]],
        payload: bytes,
    ) -> None:
        if worker is None:
            raise WireError("SLOT_FINAL before WORKER_HELLO; handshake first")
        _, lo, hi = worker
        fields = decode_control(payload)
        try:
            t = int(fields["t"])
        except (KeyError, TypeError, ValueError):
            raise WireError("SLOT_FINAL must carry an integer 't' field") from None
        missing = [s for s in range(lo, hi) if not self.aggregator.has_state(t, s)]
        if missing:
            raise WireError(
                f"SLOT_FINAL for slot {t} but shards {missing} have not "
                "delivered their states"
            )
        await self._send(
            writer, encode_control(FrameType.STATE_ACK, t=t)
        )

    def _handle_fin(
        self, worker: Optional[Tuple[int, int, int]], payload: bytes
    ) -> None:
        if worker is None or not payload:
            return
        fields = decode_control(payload)
        snapshot = fields.get("metrics")
        if isinstance(snapshot, dict):
            self.worker_metrics[str(worker[0])] = snapshot


# -- worker --------------------------------------------------------------


def _encode_slot_frames(
    worker: int,
    shard_lo: int,
    n_local_shards: int,
    estimate: SlotEstimate,
    waiting: Dict[int, ReportBatch],
    keep_reports: bool,
    track_users: bool,
    robust_policy: Optional[RobustPolicy] = None,
) -> List[bytes]:
    """Encode one finalized slot as its upstream frame group.

    One ``SHARD_STATE`` per local shard in ascending (global) order,
    closed by the slot's ``SLOT_FINAL``.  The per-shard total is
    ``float(np.array(values).sum())`` — the identical expression the
    collector folds with, so the root merges the exact bits the flat
    path would have produced.  When a robust policy is set, its report
    transform (e.g. clip) is applied *before* summing, exactly where
    :meth:`CollectorShardState.add_slot_batch` applies it, so the wire
    total and values are the policed bits.
    """
    frames: List[bytes] = []
    for local in range(n_local_shards):
        batch = waiting[local]
        if batch.n_reports:
            segment = np.array(batch.values, dtype=float)
            if robust_policy is not None:
                segment = np.asarray(robust_policy.transform(segment), dtype=float)
            total = float(segment.sum())
        else:
            segment, total = None, 0.0
        state = ShardSlotState(
            shard=shard_lo + local,
            t=estimate.t,
            n_reports=batch.n_reports,
            total=total,
            values=segment if (keep_reports or track_users) and batch.n_reports else None,
            user_ids=batch.user_ids if track_users and batch.n_reports else None,
        )
        frames.append(encode_shard_state_frame(state))
    frames.append(
        encode_control(
            FrameType.SLOT_FINAL,
            t=estimate.t,
            worker=worker,
            n_reports=estimate.n_reports,
        )
    )
    return frames


class GatewayWorker:
    """One shard range's ingestion server plus its upstream state stream.

    Reuses :class:`~repro.gateway.GatewayServer` unchanged for the
    client-facing side (clients dial the worker with *local* shard
    indices ``0..n_local-1``; the fleet router translates), and streams
    every finalized slot upstream to the root as encoded frame groups
    held in an outbox until acknowledged.  The outbox plus the root's
    per-shard resume clock make resends after reconnects idempotent.
    """

    def __init__(
        self,
        worker: int,
        shard_lo: int,
        shard_hi: int,
        horizon: int,
        epsilon: float = 1.0,
        w: int = 10,
        smoothing_window: Optional[int] = 3,
        track_users: bool = False,
        keep_reports: bool = True,
        host: str = "127.0.0.1",
        port: int = 0,
        root_host: str = "127.0.0.1",
        root_port: int = 0,
        max_slot_skew: int = 8,
        retry_after: float = 0.02,
        record_batches: bool = False,
        robust_policy=None,
        pipeline: Optional[IngestionPipeline] = None,
        next_expected: Optional[List[int]] = None,
        outbox: Optional[List[Tuple[int, List[bytes]]]] = None,
        max_reconnects: int = 10,
        connect_attempts: int = 20,
        backoff: float = 0.05,
        connect_timeout: float = 10.0,
    ) -> None:
        if shard_hi <= shard_lo:
            raise ValueError(
                f"worker shard range [{shard_lo}, {shard_hi}) is empty"
            )
        self.worker = int(worker)
        self.shard_lo = int(shard_lo)
        self.shard_hi = int(shard_hi)
        self.root_host = root_host
        self.root_port = int(root_port)
        self.max_reconnects = int(max_reconnects)
        self.connect_attempts = int(connect_attempts)
        self.backoff = float(backoff)
        self.connect_timeout = float(connect_timeout)
        n_local = self.shard_hi - self.shard_lo
        if pipeline is None:
            pipeline = IngestionPipeline(
                n_shards=n_local,
                horizon=horizon,
                epsilon=epsilon,
                w=w,
                smoothing_window=smoothing_window,
                track_users=track_users,
                keep_reports=keep_reports,
                max_slot_skew=max_slot_skew,
                record_batches=record_batches,
                robust_policy=robust_policy,
            )
        elif pipeline.n_shards != n_local:
            raise ValueError(
                f"pipeline serves {pipeline.n_shards} shards but the "
                f"worker owns {n_local}"
            )
        self.pipeline = pipeline
        pipeline.on_slot_finalized = self._on_slot_finalized
        self.server = GatewayServer(
            pipeline,
            host=host,
            port=port,
            retry_after=retry_after,
            next_expected=next_expected,
        )
        #: encoded upstream frame groups, one per finalized slot, in
        #: ascending-slot order; kept until the root acks the slot
        self._outbox: List[Tuple[int, List[bytes]]] = outbox if outbox is not None else []
        self._outbox_grew = asyncio.Event()
        self.acked_slots = 0
        self.upstream_reconnects = 0
        self._upstream_task: Optional[asyncio.Task] = None
        self._up_writer: Optional[asyncio.StreamWriter] = None
        self._up_reader: Optional[asyncio.StreamReader] = None
        self._crashed = False

    @property
    def n_local_shards(self) -> int:
        return self.shard_hi - self.shard_lo

    def _on_slot_finalized(
        self, estimate: SlotEstimate, waiting: Dict[int, ReportBatch]
    ) -> None:
        frames = _encode_slot_frames(
            self.worker,
            self.shard_lo,
            self.n_local_shards,
            estimate,
            waiting,
            self.pipeline.collector.keep_reports,
            self.pipeline.collector.track_users,
            robust_policy=self.pipeline.collector.robust_policy,
        )
        self._outbox.append((estimate.t, frames))
        self._outbox_grew.set()

    # -- lifecycle -------------------------------------------------------

    async def start(self, metadata: Optional[Dict[str, Any]] = None) -> None:
        meta = {"worker": self.worker, "shard_lo": self.shard_lo}
        meta.update(metadata or {})
        await self.server.start(meta)
        self._upstream_task = asyncio.create_task(self._run_upstream())

    async def wait_complete(self, timeout: Optional[float] = None) -> None:
        """Block until every slot is finalized locally *and* acked upstream."""
        if self._upstream_task is None:
            raise RuntimeError("worker not started")
        await asyncio.wait_for(asyncio.shield(self._upstream_task), timeout)

    async def stop(self, drain_timeout: float = 5.0) -> None:
        await self.server.stop(drain_timeout)
        task = self._upstream_task
        if task is not None and not task.done():
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
        self._close_upstream()

    async def crash(self) -> None:
        """Kill -9 simulation: server, upstream stream, and WAL at once."""
        self._crashed = True
        task = self._upstream_task
        if task is not None and not task.done():
            task.cancel()
        self._close_upstream()
        await self.server.crash()
        if task is not None:
            await asyncio.gather(task, return_exceptions=True)

    def _close_upstream(self) -> None:
        if self._up_writer is not None:
            transport = self._up_writer.transport
            if transport is not None:
                transport.abort()
            self._up_writer = None
            self._up_reader = None

    # -- upstream stream -------------------------------------------------

    async def _connect_upstream(self) -> int:
        """Dial the root, handshake, return the resume slot."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.root_host, self.root_port),
            self.connect_timeout,
        )
        self._up_writer = writer
        try:
            writer.write(
                encode_control(
                    FrameType.WORKER_HELLO,
                    worker=self.worker,
                    shard_lo=self.shard_lo,
                    shard_hi=self.shard_hi,
                    horizon=self.pipeline.horizon,
                )
            )
            await writer.drain()
            ack = await asyncio.wait_for(
                self._expect(reader, FrameType.WORKER_HELLO_ACK),
                self.connect_timeout,
            )
        except BaseException:
            self._close_upstream()
            raise
        self._up_reader = reader
        return int(ack["resume_slot"])

    async def _expect(
        self, reader: asyncio.StreamReader, expected: int
    ) -> Dict[str, Any]:
        frame = await read_frame(reader)
        if frame is None:
            raise ConnectionResetError("root closed the connection")
        frame_type, payload = frame
        fields = decode_control(payload) if payload else {}
        if frame_type == FrameType.ERROR:
            raise GatewayError(
                fields.get("message", "root reported a protocol error")
            )
        if frame_type != expected:
            raise WireError(f"expected frame type {expected}, got {frame_type}")
        return fields

    async def _run_upstream(self) -> None:
        horizon = self.pipeline.horizon
        reconnects = -1  # first connect is free
        while True:
            try:
                resume = await self._retry_connect()
                await self._stream_from(resume, horizon)
                return
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                if self._crashed:
                    raise
                reconnects += 1
                self.upstream_reconnects = max(reconnects, 0)
                if reconnects >= self.max_reconnects:
                    raise ConnectionError(
                        f"worker {self.worker} exhausted its "
                        f"{self.max_reconnects} upstream reconnects"
                    )
                await asyncio.sleep(self.backoff)

    async def _retry_connect(self) -> int:
        for attempt in range(self.connect_attempts):
            try:
                return await self._connect_upstream()
            except (ConnectionError, OSError, asyncio.TimeoutError):
                if attempt == self.connect_attempts - 1:
                    raise
                await asyncio.sleep(self.backoff * (attempt + 1))
        raise ConnectionError("unreachable")  # pragma: no cover

    async def _stream_from(self, resume: int, horizon: int) -> None:
        writer = self._up_writer
        reader = self._up_reader
        assert writer is not None and reader is not None
        acked = 0
        while acked < len(self._outbox) and self._outbox[acked][0] < resume:
            acked += 1
        if self._outbox and resume < self._outbox[0][0]:
            raise GatewayError(
                f"root asks to resume from slot {resume} but this "
                f"worker's outbox starts at slot {self._outbox[0][0]} — "
                "slots compacted into a WAL checkpoint cannot be resent "
                "(see the operations runbook)"
            )
        self.acked_slots = max(self.acked_slots, acked)
        sent = acked
        while self.acked_slots < horizon:
            while sent >= len(self._outbox):
                self._outbox_grew.clear()
                if sent < len(self._outbox):
                    break
                await self._outbox_grew.wait()
            t, frames = self._outbox[sent]
            for frame in frames:
                writer.write(frame)
            await writer.drain()
            ack = await self._expect(reader, FrameType.STATE_ACK)
            if int(ack.get("t", t)) != t:
                raise WireError(
                    f"root acked slot {ack.get('t')} but slot {t} was in flight"
                )
            sent += 1
            self.acked_slots = sent
        self.server.metrics.mark_finished()
        writer.write(
            encode_control(
                FrameType.FIN,
                worker=self.worker,
                metrics=self.server.metrics.snapshot(),
            )
        )
        await writer.drain()
        await self._expect(reader, FrameType.FIN_ACK)
        self._close_upstream()


def recover_worker(
    wal_dir: str,
    worker: int,
    shard_lo: int,
    shard_hi: int,
    root_host: str,
    root_port: int,
    host: str = "127.0.0.1",
    port: int = 0,
    retry_after: float = 0.02,
    fsync: str = "commit",
    **worker_kwargs: Any,
) -> Tuple[GatewayWorker, Any]:
    """Rebuild a crashed worker from its write-ahead log.

    Replays the WAL through a fresh pipeline with the slot-finalization
    hook attached *before* replay, so every slot found in the surviving
    segments re-enters the upstream outbox — the root's resume clock
    then makes the resends idempotent.  Slots compacted into a WAL
    checkpoint are restored (bit-exact) but cannot be resent; if the
    root still needs one, the worker fails with a clear error (see the
    distributed runbook in ``docs/operations.md``).

    Returns ``(worker, recovery)`` — the worker is ready to
    :meth:`~GatewayWorker.start`; ``recovery`` is the underlying
    :class:`~repro.wal.WalRecovery` (replay counters, torn-tail flag).
    """
    from ..wal import WriteAheadLog, recover_pipeline

    outbox: List[Tuple[int, List[bytes]]] = []

    def configure(pipeline: IngestionPipeline) -> None:
        n_local = pipeline.n_shards

        def hook(estimate: SlotEstimate, waiting: Dict[int, ReportBatch]) -> None:
            outbox.append(
                (
                    estimate.t,
                    _encode_slot_frames(
                        worker,
                        shard_lo,
                        n_local,
                        estimate,
                        waiting,
                        pipeline.collector.keep_reports,
                        pipeline.collector.track_users,
                        robust_policy=pipeline.collector.robust_policy,
                    ),
                )
            )

        pipeline.on_slot_finalized = hook

    recovery = recover_pipeline(wal_dir, configure=configure)
    pipeline = recovery.pipeline
    if pipeline.n_shards != shard_hi - shard_lo:
        raise ValueError(
            f"WAL at {wal_dir} serves {pipeline.n_shards} shards but the "
            f"worker owns [{shard_lo}, {shard_hi})"
        )
    pipeline.attach_wal(WriteAheadLog(wal_dir, fsync=fsync))
    rebuilt = GatewayWorker(
        worker=worker,
        shard_lo=shard_lo,
        shard_hi=shard_hi,
        horizon=pipeline.horizon,
        host=host,
        port=port,
        root_host=root_host,
        root_port=root_port,
        retry_after=retry_after,
        pipeline=pipeline,
        next_expected=recovery.next_expected,
        outbox=outbox,
        **worker_kwargs,
    )
    return rebuilt, recovery


# -- fleet routing -------------------------------------------------------


class _WorkerLocalFeed:
    """View of a global shard feed re-indexed to its worker's local space.

    Workers run ordinary pipelines over local shards ``0..k-1``; the
    router wraps each global feed so the client handshake and batches
    carry the local index.  Re-wrapping batches is cheap —
    :class:`~repro.service.events.ReportBatch` construction is O(1)
    validation over the same arrays.
    """

    def __init__(self, feed: ShardFeed, shard_lo: int) -> None:
        self._feed = feed
        self.shard = feed.shard - shard_lo
        self.engine = feed.engine

    @property
    def horizon(self) -> int:
        return self._feed.horizon

    def __iter__(self):
        for batch in self._feed:
            yield ReportBatch(
                shard=self.shard,
                t=batch.t,
                user_ids=batch.user_ids,
                values=batch.values,
            )


async def run_distributed_fleet_async(
    feeds: Sequence[ShardFeed],
    topology: Sequence[WorkerSpec],
    jitter: float = 0.0,
    seed: int = 0,
    drops: Optional[Dict[int, Iterable[int]]] = None,
    netem: Optional[NetemSpec] = None,
    max_reconnects: int = 10,
) -> List[ShardUploadReport]:
    """Drive every shard feed to its owning worker (shard affinity).

    Same contract as :func:`~repro.gateway.fleet.run_fleet_async`, with
    routing: each feed dials the worker whose range covers its global
    shard, uploading under the worker-local index.  Jitter generators
    and ``drops`` stay keyed by *global* shard, so fault schedules are
    identical across 1-worker and N-worker topologies.
    """
    drops = drops or {}
    if netem is not None:
        max_reconnects += netem.partition_slot_count()

    async def _drive(feed: ShardFeed) -> ShardUploadReport:
        spec = worker_for_shard(topology, feed.shard)
        report = await drive_feed(
            _WorkerLocalFeed(feed, spec.shard_lo),
            spec.host,
            spec.port,
            jitter=jitter,
            rng=np.random.default_rng(
                np.random.SeedSequence([int(seed), feed.shard])
            )
            if jitter > 0.0
            else None,
            drop_slots=drops.get(feed.shard, ()),
            netem=netem,
            max_reconnects=max_reconnects,
        )
        report.shard = feed.shard  # report under the global index
        return report

    return list(await asyncio.gather(*(_drive(feed) for feed in feeds)))


# -- run drivers ---------------------------------------------------------


@dataclass
class DistributedRunResult:
    """A finished distributed run: estimates plus tree-wide telemetry."""

    result: LiveRunResult
    metrics: GatewayMetrics
    worker_metrics: Dict[str, Dict[str, Any]]
    shard_reports: List[ShardUploadReport]
    topology: List[WorkerSpec]
    root_port: int

    def metrics_payload(self) -> Dict[str, Any]:
        """Root snapshot plus the per-worker breakdown and totals."""
        payload: Dict[str, Any] = {"root": self.metrics.snapshot()}
        payload.update(aggregate_worker_metrics(self.worker_metrics))
        return payload


def run_distributed(
    source: Any,
    algorithm: "str | Sequence[str]" = "capp",
    epsilon: float = 1.0,
    w: int = 10,
    smoothing_window: Optional[int] = 3,
    participation: "float | Sequence[float] | None" = None,
    seed: int = 0,
    chunk_size: Optional[int] = None,
    workers: int = 2,
    host: str = "127.0.0.1",
    root_port: int = 0,
    jitter: float = 0.0,
    drops: Optional[Dict[int, Iterable[int]]] = None,
    netem: Optional[NetemSpec] = None,
    max_slot_skew: int = 8,
    retry_after: float = 0.02,
    track_users: bool = False,
    keep_reports: bool = True,
    record_history: bool = False,
    complete_timeout: float = 120.0,
    attack=None,
    robust_policy=None,
) -> DistributedRunResult:
    """Serve a population through the full aggregation tree, in-process.

    Root, workers, and fleet all share one event loop but talk real
    loopback TCP — the same frames a multi-host deployment sends.  The
    result is bit-identical to :func:`~repro.runtime.
    run_protocol_sharded` with the same seed and decomposition, and the
    population-wide w-event audit runs before returning.  Tests and the
    chaos drills use this driver; for process-per-worker scale-out see
    :func:`run_distributed_processes`.
    """
    feeds = shard_feeds(
        source,
        algorithm=algorithm,
        epsilon=epsilon,
        w=w,
        participation=participation,
        seed=seed,
        chunk_size=chunk_size,
        record_history=record_history,
        attack=attack,
    )
    if not feeds:
        raise ValueError("source yielded no chunks; nothing to serve")
    n_shards = len(feeds)
    horizon = feeds[0].horizon
    ranges = shard_ranges(n_shards, workers)

    async def _serve() -> DistributedRunResult:
        aggregator = ShardStateAggregator(
            n_shards,
            horizon,
            epsilon=epsilon,
            w=w,
            smoothing_window=smoothing_window,
            track_users=track_users,
            keep_reports=keep_reports,
            robust_policy=robust_policy,
        )
        root = RootAggregator(aggregator, host=host, port=root_port)
        await root.start()
        bound_port = root.port
        fleet: List[GatewayWorker] = []
        topology: List[WorkerSpec] = []
        try:
            for i, (lo, hi) in enumerate(ranges):
                wkr = GatewayWorker(
                    worker=i,
                    shard_lo=lo,
                    shard_hi=hi,
                    horizon=horizon,
                    epsilon=epsilon,
                    w=w,
                    smoothing_window=smoothing_window,
                    track_users=track_users,
                    keep_reports=keep_reports,
                    host=host,
                    root_host=host,
                    root_port=root.port,
                    max_slot_skew=max_slot_skew,
                    retry_after=retry_after,
                    robust_policy=robust_policy,
                )
                await wkr.start(
                    metadata={
                        "algorithm": algorithm
                        if isinstance(algorithm, str)
                        else "per-user",
                        "seed": int(seed),
                    }
                )
                fleet.append(wkr)
                topology.append(
                    WorkerSpec(i, lo, hi, host=host, port=wkr.server.port)
                )
            reports = await run_distributed_fleet_async(
                feeds,
                topology,
                jitter=jitter,
                seed=seed,
                drops=drops,
                netem=netem,
            )
            for wkr in fleet:
                await wkr.wait_complete(timeout=complete_timeout)
            await root.wait_complete(timeout=complete_timeout)
        finally:
            for wkr in fleet:
                await wkr.stop()
            await root.stop()
        result = root.result(feeds=feeds)
        return DistributedRunResult(
            result=result,
            metrics=root.metrics,
            worker_metrics=dict(root.worker_metrics),
            shard_reports=reports,
            topology=topology,
            root_port=bound_port,
        )

    run = gateway_run(_serve())
    run.result.assert_valid()
    return run


# -- process-per-worker scale-out ----------------------------------------


def _worker_process_main(
    make_source: Callable[[], Any], cfg: Dict[str, Any], queue: Any
) -> None:
    """Entry point of one worker process: local server + local fleet.

    Builds only its own shard range's feeds (the per-chunk generators
    are index-keyed, so the skipped chunks change nothing), serves them
    through a loopback fleet, streams states to the root, and reports
    its upload summary and w-event audit verdict back over the queue.
    """
    try:
        lo, hi = cfg["shard_lo"], cfg["shard_hi"]
        source = make_source()
        feeds = shard_feeds(
            source,
            algorithm=cfg["algorithm"],
            epsilon=cfg["epsilon"],
            w=cfg["w"],
            participation=cfg["participation"],
            seed=cfg["seed"],
            chunk_size=cfg["chunk_size"],
            shards=range(lo, hi),
            attack=cfg.get("attack"),
        )
        if len(feeds) != hi - lo:
            raise RuntimeError(
                f"worker {cfg['worker']}: source yielded {len(feeds)} "
                f"chunks for shard range [{lo}, {hi})"
            )

        async def _run():
            wkr = GatewayWorker(
                worker=cfg["worker"],
                shard_lo=lo,
                shard_hi=hi,
                horizon=feeds[0].horizon,
                epsilon=cfg["epsilon"],
                w=cfg["w"],
                smoothing_window=cfg["smoothing_window"],
                track_users=cfg["track_users"],
                keep_reports=cfg["keep_reports"],
                host=cfg["host"],
                root_host=cfg["root_host"],
                root_port=cfg["root_port"],
                max_slot_skew=cfg["max_slot_skew"],
                retry_after=cfg["retry_after"],
                robust_policy=cfg.get("robust_policy"),
            )
            await wkr.start(metadata={"seed": cfg["seed"]})
            topology = [
                WorkerSpec(cfg["worker"], lo, hi, cfg["host"], wkr.server.port)
            ]
            try:
                reports = await run_distributed_fleet_async(feeds, topology)
                await wkr.wait_complete(timeout=cfg["complete_timeout"])
            finally:
                await wkr.stop()
            return reports

        reports = gateway_run(_run())
        for feed in feeds:
            feed.engine.assert_valid()
        queue.put(
            {
                "worker": cfg["worker"],
                "ok": True,
                "reports": [dataclasses.asdict(r) for r in reports],
            }
        )
    except BaseException as error:  # noqa: BLE001 - crosses the process boundary
        queue.put(
            {
                "worker": cfg.get("worker"),
                "ok": False,
                "error": f"{type(error).__name__}: {error}",
            }
        )
        raise SystemExit(1) from None


def run_distributed_processes(
    make_source: Callable[[], Any],
    n_shards: int,
    workers: int = 2,
    algorithm: "str | Sequence[str]" = "capp",
    epsilon: float = 1.0,
    w: int = 10,
    smoothing_window: Optional[int] = 3,
    participation: "float | Sequence[float] | None" = None,
    seed: int = 0,
    chunk_size: Optional[int] = None,
    track_users: bool = False,
    keep_reports: bool = True,
    host: str = "127.0.0.1",
    root_port: int = 0,
    max_slot_skew: int = 8,
    retry_after: float = 0.02,
    complete_timeout: float = 300.0,
    mp_context: Optional[str] = None,
    attack=None,
    robust_policy=None,
) -> DistributedRunResult:
    """Serve a population with one OS process per worker.

    ``make_source`` is called once in the parent (to learn the horizon)
    and once per worker process; it must be picklable under spawn-style
    start methods (a top-level function or ``functools.partial``).  Each
    worker builds only its own shard range's feeds, runs its server and
    local loopback fleet on its own event loop, and streams states to
    the root in this process over TCP — the topology a multi-host
    deployment uses, minus the distance.

    The per-shard w-event audit runs inside each worker (budget ledgers
    never cross the process boundary); the returned result carries
    ``feeds=None`` accordingly.
    """
    source = make_source()
    horizon = int(source.horizon)
    ranges = shard_ranges(n_shards, workers)
    ctx = multiprocessing.get_context(mp_context)
    # Ship the adversarial knobs as their JSON-safe dict forms — worker
    # processes rebuild them via make_attack/make_policy, which keeps the
    # cfg payload picklable under every start method.
    from ..adversary.attacks import make_attack

    attack_spec = make_attack(attack)
    attack_cfg = None if attack_spec is None else attack_spec.to_dict()
    policy = make_policy(robust_policy)
    policy_cfg = None if policy is None else policy.to_dict()

    async def _serve() -> DistributedRunResult:
        aggregator = ShardStateAggregator(
            n_shards,
            horizon,
            epsilon=epsilon,
            w=w,
            smoothing_window=smoothing_window,
            track_users=track_users,
            keep_reports=keep_reports,
            robust_policy=policy,
        )
        root = RootAggregator(aggregator, host=host, port=root_port)
        await root.start()
        bound_port = root.port
        queue = ctx.Queue()
        procs: List[Any] = []
        for i, (lo, hi) in enumerate(ranges):
            cfg = {
                "worker": i,
                "shard_lo": lo,
                "shard_hi": hi,
                "algorithm": algorithm,
                "epsilon": epsilon,
                "w": w,
                "smoothing_window": smoothing_window,
                "participation": participation,
                "seed": seed,
                "chunk_size": chunk_size,
                "track_users": track_users,
                "keep_reports": keep_reports,
                "host": host,
                "root_host": host,
                "root_port": bound_port,
                "max_slot_skew": max_slot_skew,
                "retry_after": retry_after,
                "complete_timeout": complete_timeout,
                "attack": attack_cfg,
                "robust_policy": policy_cfg,
            }
            proc = ctx.Process(
                target=_worker_process_main,
                args=(make_source, cfg, queue),
                daemon=True,
            )
            proc.start()
            procs.append(proc)

        summaries: List[Dict[str, Any]] = []

        def _drain_queue() -> None:
            while True:
                try:
                    summaries.append(queue.get_nowait())
                except Exception:
                    return

        try:
            deadline = asyncio.get_running_loop().time() + complete_timeout
            while not aggregator.complete:
                _drain_queue()
                failed = [s for s in summaries if not s.get("ok")]
                if failed:
                    raise RuntimeError(
                        "worker process failed: "
                        + "; ".join(
                            f"worker {s.get('worker')}: {s.get('error')}"
                            for s in failed
                        )
                    )
                dead = [
                    p for p in procs if not p.is_alive() and p.exitcode not in (0, None)
                ]
                if dead:
                    raise RuntimeError(
                        f"{len(dead)} worker process(es) exited abnormally "
                        f"(exit codes {[p.exitcode for p in dead]})"
                    )
                if asyncio.get_running_loop().time() > deadline:
                    raise TimeoutError(
                        f"distributed run incomplete after {complete_timeout}s "
                        f"(root at slot {aggregator.next_slot}/{horizon})"
                    )
                try:
                    await root.wait_complete(timeout=0.05)
                except asyncio.TimeoutError:
                    continue
            loop = asyncio.get_running_loop()
            for proc in procs:
                await loop.run_in_executor(None, proc.join, 30.0)
            _drain_queue()
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            await root.stop()
        failed = [s for s in summaries if not s.get("ok")]
        if failed:
            raise RuntimeError(
                "worker process failed after completion: "
                + "; ".join(
                    f"worker {s.get('worker')}: {s.get('error')}" for s in failed
                )
            )
        reports = [
            ShardUploadReport(**fields)
            for summary in summaries
            for fields in summary.get("reports", ())
        ]
        reports.sort(key=lambda r: r.shard)
        result = root.result(feeds=None)
        return DistributedRunResult(
            result=result,
            metrics=root.metrics,
            worker_metrics=dict(root.worker_metrics),
            shard_reports=reports,
            topology=[
                WorkerSpec(i, lo, hi, host=host) for i, (lo, hi) in enumerate(ranges)
            ],
            root_port=bound_port,
        )

    return gateway_run(_serve())
