"""Asyncio client for the report-ingestion gateway.

:class:`GatewayClient` owns one connection for one user-shard: it
performs the ``HELLO`` handshake (learning the server's ``resume_slot``
for the shard — where to pick up after a reconnect), uploads one framed
:class:`~repro.service.events.ReportBatch` per slot, and waits for each
acknowledgement before sending the next (one batch in flight per
connection; the server's load shedding paces faster shards via
``REJECT`` + retry).

The client never re-runs a mechanism: retries and reconnect resends
reuse the batch object already produced by the shard's feed, so the
privacy budget is spent exactly once per slot however unreliable the
transport is.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from ..service.events import ReportBatch
from .wire import (
    FrameType,
    WireError,
    decode_control,
    encode_batch_frame,
    encode_control,
    read_frame,
)

__all__ = ["GatewayClient", "GatewayError"]


class GatewayError(RuntimeError):
    """The server reported a protocol error (``ERROR`` frame)."""


class GatewayClient:
    """One shard's connection to a :class:`~repro.gateway.GatewayServer`.

    Args:
        host, port: the gateway's listen address.
        shard: the user-shard this connection uploads for.
        connect_timeout: seconds to wait for the TCP connect + handshake.
    """

    def __init__(
        self,
        host: str,
        port: int,
        shard: int,
        connect_timeout: float = 10.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.shard = int(shard)
        self.connect_timeout = float(connect_timeout)
        self.resume_slot = 0
        self.horizon: Optional[int] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    async def connect(self) -> int:
        """Open the connection and handshake; returns the resume slot.

        ``resume_slot`` is the next slot the server expects from this
        shard — ``0`` on a first connect, later after a reconnect whose
        predecessor delivered batches (acked or not).
        """
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.connect_timeout
        )
        try:
            await self._send(encode_control(FrameType.HELLO, shard=self.shard))
            ack = await asyncio.wait_for(
                self._expect(FrameType.HELLO_ACK), self.connect_timeout
            )
        except BaseException:
            # A failed handshake must not leak the dialed socket — the
            # fleet's retry loop would otherwise stack half-open
            # connections against a stalled server.
            self.abort()
            raise
        self.resume_slot = int(ack["resume_slot"])
        self.horizon = int(ack["horizon"])
        return self.resume_slot

    async def send_batch(self, batch: ReportBatch, drop_before_ack: bool = False) -> str:
        """Upload one batch and wait for its acknowledgement.

        Returns ``"accepted"`` or ``"duplicate"``.  A ``REJECT`` (load
        shed) is handled internally: the client sleeps the server's
        ``retry_after_seconds`` hint and resends the same batch object.

        ``drop_before_ack`` is the fault-injection hook used by the
        fleet's reconnect tests: the frame is written, then the
        connection is torn down before reading the ack — exactly the
        window where a real client cannot know whether the upload
        landed.
        """
        if batch.shard != self.shard:
            raise ValueError(
                f"client uploads shard {self.shard} but batch is for "
                f"shard {batch.shard}"
            )
        while True:
            await self._send(encode_batch_frame(batch))
            if drop_before_ack:
                self.abort()
                raise ConnectionResetError(
                    f"injected drop after uploading slot {batch.t}"
                )
            frame = await self._read()
            frame_type, fields = frame
            if frame_type == FrameType.BATCH_ACK:
                self.resume_slot = max(self.resume_slot, int(fields["t"]) + 1)
                return "duplicate" if fields.get("duplicate") else "accepted"
            if frame_type == FrameType.REJECT:
                await asyncio.sleep(float(fields.get("retry_after_seconds", 0.02)))
                continue
            raise WireError(f"unexpected frame type {frame_type} awaiting ack")

    async def finish(self) -> None:
        """Graceful goodbye (``FIN`` / ``FIN_ACK``), then close.

        A server that already hung up (run complete, listener closing)
        is not a client fault — the goodbye is best-effort.
        """
        try:
            if self.connected:
                await self._send(encode_control(FrameType.FIN))
                await self._expect(FrameType.FIN_ACK)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            await self.close()

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
            self._writer = None
            self._reader = None

    def abort(self) -> None:
        """Tear the transport down immediately (no goodbye, no flush)."""
        if self._writer is not None:
            transport = self._writer.transport
            if transport is not None:
                transport.abort()
            self._writer = None
            self._reader = None

    # -- internals -------------------------------------------------------

    async def _send(self, frame: bytes) -> None:
        if self._writer is None:
            raise ConnectionError("client is not connected")
        self._writer.write(frame)
        await self._writer.drain()

    async def _read(self):
        if self._reader is None:
            raise ConnectionError("client is not connected")
        frame = await read_frame(self._reader)
        if frame is None:
            raise ConnectionResetError("server closed the connection")
        frame_type, payload = frame
        fields = decode_control(payload) if payload else {}
        if frame_type == FrameType.ERROR:
            raise GatewayError(fields.get("message", "server reported an error"))
        return frame_type, fields

    async def _expect(self, expected_type: int):
        frame_type, fields = await self._read()
        if frame_type != expected_type:
            raise WireError(
                f"expected frame type {expected_type}, got {frame_type}"
            )
        return fields
