"""Async client fleet: N simulated user-shards uploading concurrently.

The fleet turns any population source — raw matrices, memmaps, or the
:mod:`repro.runtime.scenarios` presets — into a *network* workload: one
:class:`~repro.gateway.client.GatewayClient` connection per shard feed,
all running concurrently on one event loop, with configurable arrival
jitter and reconnect-on-drop.  Because the shard engines live on the
feeds (client side), a dropped connection loses no protocol state: the
fleet reconnects, the ``HELLO_ACK`` resume slot says what the server
already holds, and the upload continues without re-running a mechanism
or re-spending budget.

:func:`run_gateway` is the one-call loopback driver — server plus fleet
in one event loop — and the gateway analogue of
:func:`~repro.service.run_live`: same arguments, same bit-identical
result, but every report crosses a real TCP connection.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..analysis.streaming_queries import StreamingQueryEngine
from ..service.feeds import ShardFeed, shard_feeds
from ..service.pipeline import IngestionPipeline, LiveRunResult
from ..service.sinks import Sink
from .client import GatewayClient
from .eventloop import gateway_run
from .metrics import GatewayMetrics
from .server import GatewayServer

__all__ = [
    "NetemSpec",
    "ShardUploadReport",
    "GatewayRunResult",
    "drive_feed",
    "run_fleet_async",
    "run_fleet",
    "run_gateway",
]


@dataclass(frozen=True)
class NetemSpec:
    """Netem-style network impairment, scheduled in protocol slots.

    The client-side analogue of ``tc qdisc add dev ... netem``: inside a
    *delay window* every upload waits ``delay`` extra seconds before
    hitting the wire; inside a *partition window* the first upload
    attempt of each slot finds the network unreachable — the transport
    is aborted without the frame being read, the client sits out the
    ``partition_outage`` blackout, then reconnects and resumes.  Both
    impairments are transport-level only: they stall and retry
    deliveries but never change *what* is delivered, so estimates and
    privacy ledgers stay bit-identical to an unimpaired run (tested by
    the chaos suite).

    Windows are inclusive ``(start, end)`` slot ranges.  An empty
    ``delay_windows`` with ``delay > 0`` delays every slot; ``shards``
    restricts the impairment to those shard indices (``None`` = all).
    """

    delay: float = 0.0
    delay_windows: "tuple[tuple[int, int], ...]" = ()
    partition_windows: "tuple[tuple[int, int], ...]" = ()
    partition_outage: float = 0.02
    shards: Optional["tuple[int, ...]"] = None

    def __post_init__(self) -> None:
        if self.delay < 0.0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if self.partition_outage < 0.0:
            raise ValueError(
                f"partition_outage must be >= 0, got {self.partition_outage}"
            )
        for name in ("delay_windows", "partition_windows"):
            for window in getattr(self, name):
                start, end = window
                if start > end:
                    raise ValueError(
                        f"{name} window {window} has start > end"
                    )

    @staticmethod
    def _in_windows(t: int, windows: "tuple[tuple[int, int], ...]") -> bool:
        return any(start <= t <= end for start, end in windows)

    def applies_to(self, shard: int) -> bool:
        return self.shards is None or shard in self.shards

    def delay_at(self, shard: int, t: int) -> float:
        """Extra upload latency for this (shard, slot), in seconds."""
        if self.delay <= 0.0 or not self.applies_to(shard):
            return 0.0
        if self.delay_windows and not self._in_windows(t, self.delay_windows):
            return 0.0
        return self.delay

    def partitioned(self, shard: int, t: int) -> bool:
        """Whether this (shard, slot)'s first upload hits a partition."""
        return self.applies_to(shard) and self._in_windows(
            t, self.partition_windows
        )

    def partition_slot_count(self) -> int:
        """Worst-case partitions per shard (one per in-window slot)."""
        return sum(end - start + 1 for start, end in self.partition_windows)


@dataclass
class ShardUploadReport:
    """What one shard's client experienced while uploading its horizon."""

    shard: int
    uploaded: int = 0
    duplicates: int = 0
    skipped: int = 0
    reconnects: int = 0
    partitions: int = 0
    dropped_slots: List[int] = field(default_factory=list)

    @property
    def delivered(self) -> int:
        """Slots the server holds from this shard (however they got there)."""
        return self.uploaded + self.duplicates + self.skipped


@dataclass
class GatewayRunResult:
    """A finished gateway-served run: estimates plus transport telemetry."""

    result: LiveRunResult
    metrics: GatewayMetrics
    shard_reports: List[ShardUploadReport]
    port: int


async def _connect_with_retry(
    client: GatewayClient, attempts: int, backoff: float
) -> None:
    """Connect + handshake, retrying refused/late servers with backoff."""
    for attempt in range(attempts):
        try:
            await client.connect()
            return
        except (ConnectionError, OSError, asyncio.TimeoutError):
            if attempt == attempts - 1:
                raise
            await asyncio.sleep(backoff * (attempt + 1))


async def drive_feed(
    feed: ShardFeed,
    host: str,
    port: int,
    jitter: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    drop_slots: Iterable[int] = (),
    netem: Optional[NetemSpec] = None,
    max_reconnects: int = 10,
    connect_attempts: int = 20,
    backoff: float = 0.05,
) -> ShardUploadReport:
    """Upload one shard feed's full horizon through the gateway.

    Args:
        feed: the shard's batch producer (consumed exactly once — the
            in-flight batch is held across retries and reconnects, so
            budget is never re-spent).
        host, port: the gateway address.
        jitter: max per-slot arrival delay in seconds; each slot sleeps
            ``rng.uniform(0, jitter)`` first, desynchronizing shard
            arrival the way real client populations do.
        rng: jitter generator (required when ``jitter > 0``).
        drop_slots: fault injection — after uploading each listed slot,
            the connection is torn down *before* reading the ack (the
            ambiguous window), forcing a reconnect-and-resume.
        netem: scheduled link impairment (:class:`NetemSpec`) — extra
            latency in delay windows, unreachable-network blackouts in
            partition windows.  Complements ``drop_slots``: a partition
            fails the upload *before* the frame is written, a drop
            tears the connection *after*.
        max_reconnects: reconnect budget across the whole upload.
        connect_attempts, backoff: initial-connect retry schedule (the
            fleet may start before the server is listening).
    """
    if jitter > 0.0 and rng is None:
        raise ValueError("jitter > 0 requires an rng")
    client = GatewayClient(host, port, feed.shard)
    report = ShardUploadReport(shard=feed.shard)
    pending_drops = set(int(t) for t in drop_slots)
    await _connect_with_retry(client, connect_attempts, backoff)
    try:
        for batch in feed:
            if jitter > 0.0:
                await asyncio.sleep(float(rng.uniform(0.0, jitter)))
            partition_pending = netem is not None and netem.partitioned(
                feed.shard, batch.t
            )
            if netem is not None:
                extra = netem.delay_at(feed.shard, batch.t)
                if extra > 0.0:
                    await asyncio.sleep(extra)
            while True:
                try:
                    if not client.connected:
                        if report.reconnects >= max_reconnects:
                            raise ConnectionError(
                                f"shard {feed.shard} exhausted its "
                                f"{max_reconnects} reconnects"
                            )
                        await _connect_with_retry(client, connect_attempts, backoff)
                        report.reconnects += 1
                    if batch.t < client.resume_slot:
                        # Delivered before the drop; only the ack was lost.
                        report.skipped += 1
                        break
                    if partition_pending:
                        # The link is down before the frame ever leaves:
                        # abort the transport, sit out the blackout, and
                        # let the reconnect path resume the upload.
                        partition_pending = False
                        report.partitions += 1
                        client.abort()
                        if netem.partition_outage > 0.0:
                            await asyncio.sleep(netem.partition_outage)
                        raise ConnectionResetError(
                            f"injected partition at slot {batch.t}"
                        )
                    drop = batch.t in pending_drops
                    if drop:
                        pending_drops.discard(batch.t)
                        report.dropped_slots.append(batch.t)
                    status = await client.send_batch(batch, drop_before_ack=drop)
                    if status == "duplicate":
                        report.duplicates += 1
                    else:
                        report.uploaded += 1
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    await asyncio.sleep(backoff)
        await client.finish()
    finally:
        await client.close()
    return report


async def run_fleet_async(
    feeds: Sequence[ShardFeed],
    host: str,
    port: int,
    jitter: float = 0.0,
    seed: int = 0,
    drops: Optional[Dict[int, Iterable[int]]] = None,
    netem: Optional[NetemSpec] = None,
    max_reconnects: int = 10,
) -> List[ShardUploadReport]:
    """Drive every shard feed concurrently; returns per-shard reports.

    ``seed`` keys the per-shard jitter generators
    (``SeedSequence([seed, shard])``) — jitter schedules are
    reproducible, and since the pipeline barrier makes timing
    answer-irrelevant, jitter only exercises arrival interleavings.
    ``netem`` applies one impairment schedule fleet-wide (its ``shards``
    field scopes it to a subset); partition windows consume reconnect
    budget, so ``max_reconnects`` is raised by the worst-case partition
    count automatically.
    """
    drops = drops or {}
    if netem is not None:
        max_reconnects += netem.partition_slot_count()
    tasks = [
        drive_feed(
            feed,
            host,
            port,
            jitter=jitter,
            rng=np.random.default_rng(np.random.SeedSequence([int(seed), feed.shard]))
            if jitter > 0.0
            else None,
            drop_slots=drops.get(feed.shard, ()),
            netem=netem,
            max_reconnects=max_reconnects,
        )
        for feed in feeds
    ]
    return list(await asyncio.gather(*tasks))


def run_fleet(
    source,
    host: str,
    port: int,
    algorithm: "str | Sequence[str]" = "capp",
    epsilon: float = 1.0,
    w: int = 10,
    participation: "float | Sequence[float] | None" = None,
    seed: int = 0,
    chunk_size: Optional[int] = None,
    jitter: float = 0.0,
    drops: Optional[Dict[int, Iterable[int]]] = None,
    netem: Optional[NetemSpec] = None,
    attack=None,
) -> List[ShardUploadReport]:
    """Sync driver: sanitize a population source and upload it to a server.

    The client half of the two-process deployment (``python -m repro
    gateway-fleet``): builds the shard feeds exactly as
    :func:`~repro.service.run_live` would — same per-shard generators,
    so the serving side's results match the offline run bit for bit —
    and uploads them over TCP.
    """
    feeds = shard_feeds(
        source,
        algorithm=algorithm,
        epsilon=epsilon,
        w=w,
        participation=participation,
        seed=seed,
        chunk_size=chunk_size,
        attack=attack,
    )
    if not feeds:
        raise ValueError("source yielded no chunks; nothing to upload")
    return gateway_run(
        run_fleet_async(
            feeds, host, port, jitter=jitter, seed=seed, drops=drops, netem=netem
        )
    )


def run_gateway(
    source,
    algorithm: "str | Sequence[str]" = "capp",
    epsilon: float = 1.0,
    w: int = 10,
    smoothing_window: Optional[int] = 3,
    participation: "float | Sequence[float] | None" = None,
    seed: int = 0,
    chunk_size: Optional[int] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    jitter: float = 0.0,
    drops: Optional[Dict[int, Iterable[int]]] = None,
    netem: Optional[NetemSpec] = None,
    max_slot_skew: int = 8,
    retry_after: float = 0.02,
    sinks: Sequence[Sink] = (),
    dashboards: Optional[Dict[str, StreamingQueryEngine]] = None,
    record_batches: bool = False,
    track_users: bool = False,
    keep_reports: bool = True,
    record_history: bool = False,
    complete_timeout: float = 120.0,
    wal_dir: Optional[str] = None,
    fsync: str = "commit",
    attack=None,
    robust_policy=None,
) -> GatewayRunResult:
    """Serve a population through the gateway over loopback TCP.

    Starts a :class:`~repro.gateway.GatewayServer` on ``host:port``
    (``0`` picks an ephemeral port), uploads the population as a
    concurrent client fleet, and returns the finished run.  The
    estimates are bit-identical to
    :func:`~repro.runtime.run_protocol_sharded` with the same seed and
    chunk decomposition — the transport tier is an execution mode, not
    an estimator — and the population-wide w-event audit runs before
    returning, exactly like :func:`~repro.service.run_live`.

    ``wal_dir`` enables the durable write-ahead log
    (:mod:`repro.wal`): every accepted batch and slot commit is logged
    before its ack, under the given ``fsync`` policy.  This driver
    serves fresh runs only — restarting from an existing WAL directory
    is the recovery path (``python -m repro gateway-serve --wal``).
    """
    feeds = shard_feeds(
        source,
        algorithm=algorithm,
        epsilon=epsilon,
        w=w,
        participation=participation,
        seed=seed,
        chunk_size=chunk_size,
        record_history=record_history,
        attack=attack,
    )
    if not feeds:
        raise ValueError("source yielded no chunks; nothing to serve")
    pipeline = IngestionPipeline(
        n_shards=len(feeds),
        horizon=feeds[0].horizon,
        epsilon=epsilon,
        w=w,
        smoothing_window=smoothing_window,
        track_users=track_users,
        keep_reports=keep_reports,
        max_slot_skew=max_slot_skew,
        record_batches=record_batches,
        robust_policy=robust_policy,
    )
    for sink in sinks:
        pipeline.add_sink(sink)
    for name, engine in (dashboards or {}).items():
        pipeline.register_dashboard(name, engine)
    wal = None
    if wal_dir is not None:
        from ..wal import WalError, WriteAheadLog

        if WriteAheadLog.exists(wal_dir):
            raise WalError(
                f"{wal_dir} already holds a WAL; run_gateway serves fresh "
                "runs — recover an interrupted one with "
                "`python -m repro gateway-serve --wal` instead"
            )
        wal = pipeline.attach_wal(WriteAheadLog(wal_dir, fsync=fsync))

    async def _serve() -> GatewayRunResult:
        server = GatewayServer(
            pipeline, host=host, port=port, retry_after=retry_after
        )
        await server.start(
            metadata={
                "algorithm": algorithm if isinstance(algorithm, str) else "per-user",
                "seed": int(seed),
            }
        )
        bound_port = server.port
        try:
            reports = await run_fleet_async(
                feeds,
                host,
                bound_port,
                jitter=jitter,
                seed=seed,
                drops=drops,
                netem=netem,
            )
            await server.wait_complete(timeout=complete_timeout)
        finally:
            await server.stop()
        result = server.result(feeds=feeds)
        return GatewayRunResult(
            result=result,
            metrics=server.metrics,
            shard_reports=reports,
            port=bound_port,
        )

    try:
        run = gateway_run(_serve())
    finally:
        if wal is not None:
            wal.close()
    run.result.assert_valid()
    return run
