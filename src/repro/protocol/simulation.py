"""End-to-end protocol simulation: many users -> one collector.

Drives the full Fig. 1 loop in time order — every live user emits one
sanitized report per slot, the collector ingests them — and returns both
sides for evaluation.  Because evaluation code (not the collector) may
compare against ground truth, the simulation also exposes the true matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from .._validation import ensure_rng
from .collector import Collector
from .user import UserAgent

__all__ = ["SimulationResult", "run_protocol", "population_mean_mse"]


def population_mean_mse(collector: Collector, true_matrix: np.ndarray) -> float:
    """MSE between a collector's population-mean series and ground truth.

    Computed over the slots the collector actually observed (under
    dropout, slots with zero reports are excluded).  Shared by the
    reference and vectorized simulation results.
    """
    slots = collector.slots()
    estimated = np.array([collector.population_mean(t) for t in slots])
    truth = np.asarray(true_matrix, dtype=float).mean(axis=0)[slots]
    return float(np.mean((estimated - truth) ** 2))


@dataclass
class SimulationResult:
    """Everything produced by one protocol run."""

    collector: Collector
    users: "list[UserAgent]" = field(repr=False)
    true_matrix: np.ndarray = field(repr=False)

    @property
    def n_users(self) -> int:
        return len(self.users)

    def population_mean_mse(self) -> float:
        """MSE between the collector's population-mean series and truth."""
        return population_mean_mse(self.collector, self.true_matrix)


def run_protocol(
    streams: Sequence[Sequence[float]],
    algorithm: "str | Sequence[str]" = "capp",
    epsilon: float = 1.0,
    w: int = 10,
    smoothing_window: Optional[int] = 3,
    participation: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    on_slot: Optional[Callable[[int], None]] = None,
) -> SimulationResult:
    """Simulate the full collection protocol over a population.

    Args:
        streams: ``(n_users, T)`` matrix (or list of equal-length streams)
            of true values in ``[0, 1]``.
        algorithm: online algorithm name for every user, or one name per
            user (heterogeneous populations — real deployments mix client
            versions).
        epsilon, w: w-event privacy parameters shared by all users.
        smoothing_window: collector-side SMA window.
        participation: per-(user, slot) probability of actually reporting
            (models dropout / offline clients); skipped slots spend no
            budget and the collector simply receives nothing.
        rng: master generator; each user gets an independent child stream.
        on_slot: optional callback invoked after each slot is collected
            (e.g. for progress reporting or streaming analytics).

    Returns:
        A :class:`SimulationResult` with the populated collector, the
        user agents (privacy ledgers included), and the true matrix.
    """
    matrix = np.asarray(streams, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"streams must form a (users, T) matrix, got {matrix.shape}")
    rng = ensure_rng(rng)
    n_users, horizon = matrix.shape

    if isinstance(algorithm, str):
        algorithms = [algorithm] * n_users
    else:
        algorithms = list(algorithm)
        if len(algorithms) != n_users:
            raise ValueError(
                f"got {len(algorithms)} algorithm names for {n_users} users"
            )

    seeds = rng.integers(0, 2**63 - 1, size=n_users)
    users = [
        UserAgent(
            user_id=i,
            stream=matrix[i],
            algorithm=algorithms[i],
            epsilon=epsilon,
            w=w,
            rng=np.random.default_rng(seeds[i]),
        )
        for i in range(n_users)
    ]
    if not 0.0 < participation <= 1.0:
        raise ValueError(f"participation must be in (0, 1], got {participation}")
    per_report = epsilon / w
    collector = Collector(
        epsilon_per_report=per_report, smoothing_window=smoothing_window
    )

    for t in range(horizon):
        for user in users:
            if participation >= 1.0 or rng.random() < participation:
                collector.ingest(user.step())
            else:
                user.skip()
        if on_slot is not None:
            on_slot(t)

    for user in users:
        user.perturber.accountant.assert_valid()
    return SimulationResult(collector=collector, users=users, true_matrix=matrix)
