"""Wire-format types for the user -> collector protocol (Fig. 1).

:class:`Report` is the conceptual unit — one sanitized value from one
user at one slot.  The network gateway ships reports in per-shard,
per-slot *batches*; :func:`encode_report_batch` /
:func:`decode_report_batch` are the binary payload codec for those
batches (the frame layer around them lives in
:mod:`repro.gateway.wire`; the full layout is documented in
``docs/wire_format.md``).  The codec is exact: ``float64`` report values
round-trip bit-for-bit, which is what lets gateway-served runs stay
bit-identical to in-process execution.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "Report",
    "BATCH_PAYLOAD_VERSION",
    "encode_report_batch",
    "decode_report_batch",
]


@dataclass(frozen=True)
class Report:
    """One sanitized value sent by a user at a time slot.

    Attributes:
        user_id: stable identifier of the reporting user.
        t: time-slot index.
        value: the perturbed value (already LDP-sanitized; the collector
            never sees anything else).
    """

    user_id: int
    t: int
    value: float

    def __post_init__(self) -> None:
        if self.user_id < 0:
            raise ValueError(f"user_id must be non-negative, got {self.user_id}")
        if self.t < 0:
            raise ValueError(f"t must be non-negative, got {self.t}")
        if not isinstance(self.value, (int, float)):
            raise TypeError("value must be a real number")


#: version tag of the batch payload layout below (bumped on layout change)
BATCH_PAYLOAD_VERSION = 1

# Payload header: shard (u32), t (u32), n_reports (u32), id dtype code
# (u8), value dtype code (u8), 2 reserved bytes.  Big-endian, fixed 16
# bytes; the arrays that follow are little-endian (numpy native on every
# supported platform, so encode/decode are zero-copy views).
_BATCH_HEADER = struct.Struct(">IIIBBH")
_ID_DTYPE_CODE = 1  # int64, little-endian
_VALUE_DTYPE_CODE = 2  # float64, little-endian
_ID_DTYPE = np.dtype("<i8")
_VALUE_DTYPE = np.dtype("<f8")


def encode_report_batch(
    shard: int, t: int, user_ids: np.ndarray, values: np.ndarray
) -> bytes:
    """Serialize one shard-slot report batch to its wire payload.

    ``user_ids`` must be integral and ``values`` floating; both are cast
    to the wire dtypes (int64 / float64 little-endian).  The float cast
    is exact for float64 inputs — sanitized reports survive the trip
    bit-for-bit.
    """
    ids = np.ascontiguousarray(user_ids, dtype=_ID_DTYPE)
    vals = np.ascontiguousarray(values, dtype=_VALUE_DTYPE)
    if ids.ndim != 1 or ids.shape != vals.shape:
        raise ValueError(
            f"user_ids and values must be aligned 1-D arrays, got shapes "
            f"{ids.shape} and {vals.shape}"
        )
    header = _BATCH_HEADER.pack(
        int(shard), int(t), ids.size, _ID_DTYPE_CODE, _VALUE_DTYPE_CODE, 0
    )
    return header + ids.tobytes() + vals.tobytes()


def decode_report_batch(payload: bytes) -> Tuple[int, int, np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_report_batch`.

    Returns ``(shard, t, user_ids, values)``.  Raises ``ValueError`` on
    truncated, oversized, or unknown-dtype payloads — the gateway server
    turns these into protocol errors rather than crashing.
    """
    if len(payload) < _BATCH_HEADER.size:
        raise ValueError(
            f"batch payload truncated: {len(payload)} bytes is shorter "
            f"than the {_BATCH_HEADER.size}-byte header"
        )
    shard, t, n_reports, id_code, value_code, _ = _BATCH_HEADER.unpack_from(payload)
    if id_code != _ID_DTYPE_CODE or value_code != _VALUE_DTYPE_CODE:
        raise ValueError(
            f"unknown batch dtype codes ({id_code}, {value_code}); this "
            f"decoder speaks payload version {BATCH_PAYLOAD_VERSION}"
        )
    expected = _BATCH_HEADER.size + n_reports * (_ID_DTYPE.itemsize + _VALUE_DTYPE.itemsize)
    if len(payload) != expected:
        raise ValueError(
            f"batch payload for {n_reports} reports must be {expected} "
            f"bytes, got {len(payload)}"
        )
    offset = _BATCH_HEADER.size
    ids = np.frombuffer(payload, dtype=_ID_DTYPE, count=n_reports, offset=offset)
    offset += n_reports * _ID_DTYPE.itemsize
    vals = np.frombuffer(payload, dtype=_VALUE_DTYPE, count=n_reports, offset=offset)
    # Copy out of the frame buffer (frombuffer views are read-only and
    # pin the whole received frame alive).
    return int(shard), int(t), ids.astype(np.intp), vals.astype(float)
