"""Wire-format types for the user -> collector protocol (Fig. 1).

:class:`Report` is the conceptual unit — one sanitized value from one
user at one slot.  The network gateway ships reports in per-shard,
per-slot *batches*; :func:`encode_report_batch` /
:func:`decode_report_batch` are the binary payload codec for those
batches (the frame layer around them lives in
:mod:`repro.gateway.wire`; the full layout is documented in
``docs/wire_format.md``).  The codec is exact: ``float64`` report values
round-trip bit-for-bit, which is what lets gateway-served runs stay
bit-identical to in-process execution.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "Report",
    "BATCH_PAYLOAD_VERSION",
    "SHARD_STATE_PAYLOAD_VERSION",
    "ShardSlotState",
    "encode_report_batch",
    "decode_report_batch",
    "encode_shard_state",
    "decode_shard_state",
]


@dataclass(frozen=True)
class Report:
    """One sanitized value sent by a user at a time slot.

    Attributes:
        user_id: stable identifier of the reporting user.
        t: time-slot index.
        value: the perturbed value (already LDP-sanitized; the collector
            never sees anything else).
    """

    user_id: int
    t: int
    value: float

    def __post_init__(self) -> None:
        if self.user_id < 0:
            raise ValueError(f"user_id must be non-negative, got {self.user_id}")
        if self.t < 0:
            raise ValueError(f"t must be non-negative, got {self.t}")
        if not isinstance(self.value, (int, float)):
            raise TypeError("value must be a real number")


#: version tag of the batch payload layout below (bumped on layout change)
BATCH_PAYLOAD_VERSION = 1

# Payload header: shard (u32), t (u32), n_reports (u32), id dtype code
# (u8), value dtype code (u8), 2 reserved bytes.  Big-endian, fixed 16
# bytes; the arrays that follow are little-endian (numpy native on every
# supported platform, so encode/decode are zero-copy views).
_BATCH_HEADER = struct.Struct(">IIIBBH")
_ID_DTYPE_CODE = 1  # int64, little-endian
_VALUE_DTYPE_CODE = 2  # float64, little-endian
_ID_DTYPE = np.dtype("<i8")
_VALUE_DTYPE = np.dtype("<f8")


def encode_report_batch(
    shard: int, t: int, user_ids: np.ndarray, values: np.ndarray
) -> bytes:
    """Serialize one shard-slot report batch to its wire payload.

    ``user_ids`` must be integral and ``values`` floating; both are cast
    to the wire dtypes (int64 / float64 little-endian).  The float cast
    is exact for float64 inputs — sanitized reports survive the trip
    bit-for-bit.
    """
    ids = np.ascontiguousarray(user_ids, dtype=_ID_DTYPE)
    vals = np.ascontiguousarray(values, dtype=_VALUE_DTYPE)
    if ids.ndim != 1 or ids.shape != vals.shape:
        raise ValueError(
            f"user_ids and values must be aligned 1-D arrays, got shapes "
            f"{ids.shape} and {vals.shape}"
        )
    header = _BATCH_HEADER.pack(
        int(shard), int(t), ids.size, _ID_DTYPE_CODE, _VALUE_DTYPE_CODE, 0
    )
    return header + ids.tobytes() + vals.tobytes()


def decode_report_batch(
    payload: bytes, copy: bool = True
) -> Tuple[int, int, np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_report_batch`.

    Returns ``(shard, t, user_ids, values)``.  Raises ``ValueError`` on
    truncated, oversized, or unknown-dtype payloads — the gateway server
    turns these into protocol errors rather than crashing.

    With ``copy=False`` the returned arrays are read-only zero-copy
    views into ``payload`` (the wire dtypes are the numpy-native int64 /
    float64 on every supported platform).  The views keep the whole
    frame buffer alive; use them only on hot paths that consume the
    batch immediately — the collector copies values on ingest, so the
    views never outlive the frame.
    """
    if len(payload) < _BATCH_HEADER.size:
        raise ValueError(
            f"batch payload truncated: {len(payload)} bytes is shorter "
            f"than the {_BATCH_HEADER.size}-byte header"
        )
    shard, t, n_reports, id_code, value_code, _ = _BATCH_HEADER.unpack_from(payload)
    if id_code != _ID_DTYPE_CODE or value_code != _VALUE_DTYPE_CODE:
        raise ValueError(
            f"unknown batch dtype codes ({id_code}, {value_code}); this "
            f"decoder speaks payload version {BATCH_PAYLOAD_VERSION}"
        )
    expected = _BATCH_HEADER.size + n_reports * (_ID_DTYPE.itemsize + _VALUE_DTYPE.itemsize)
    if len(payload) != expected:
        raise ValueError(
            f"batch payload for {n_reports} reports must be {expected} "
            f"bytes, got {len(payload)}"
        )
    offset = _BATCH_HEADER.size
    ids = np.frombuffer(payload, dtype=_ID_DTYPE, count=n_reports, offset=offset)
    offset += n_reports * _ID_DTYPE.itemsize
    vals = np.frombuffer(payload, dtype=_VALUE_DTYPE, count=n_reports, offset=offset)
    if not copy:
        return int(shard), int(t), ids, vals
    # Copy out of the frame buffer (frombuffer views are read-only and
    # pin the whole received frame alive).
    return int(shard), int(t), ids.astype(np.intp), vals.astype(float)


#: version tag of the shard-state payload layout below
SHARD_STATE_PAYLOAD_VERSION = 1

# Shard-state header: shard (u32), t (u32), n_reports (u32), flags (u8),
# reserved (u8), reserved (u16), slot sum (f64).  Big-endian, fixed
# 24 bytes; optional trailing arrays are little-endian like the batch
# payload.  The sum is the worker-computed ``float(segment.sum())`` —
# shipping its exact bit pattern (not recomputing at the root) is what
# keeps the distributed merge bit-identical to the flat fold.
_STATE_HEADER = struct.Struct(">IIIBBHd")
_STATE_HAS_VALUES = 1
_STATE_HAS_IDS = 2


@dataclass(frozen=True)
class ShardSlotState:
    """One shard's finalized contribution to one slot, as shipped upstream.

    This is the wire-level projection of one ``(slot, shard)`` cell of a
    :class:`~repro.protocol.collector.CollectorShardState`: the report
    count, the shard's slot sum (exact float64 bits), and — only when the
    run keeps them — the raw sanitized values and reporting user ids.
    An ``n_reports == 0`` state marks barrier presence for an empty
    shard-slot; the root never merges it (the flat path skips empty
    batches, so merging would desynchronize ``slot_sums`` keys).
    """

    shard: int
    t: int
    n_reports: int
    total: float
    values: Optional[np.ndarray] = None
    user_ids: Optional[np.ndarray] = None


def encode_shard_state(
    shard: int,
    t: int,
    n_reports: int,
    total: float,
    values: Optional[np.ndarray] = None,
    user_ids: Optional[np.ndarray] = None,
) -> bytes:
    """Serialize one finalized shard-slot state to its wire payload.

    ``values`` / ``user_ids`` are optional segments (present only for
    ``keep_reports`` / ``track_users`` runs); when given they must hold
    exactly ``n_reports`` elements.  ``total`` is shipped as raw float64
    bits, never re-derived from the segments.
    """
    flags = 0
    body = b""
    if values is not None:
        vals = np.ascontiguousarray(values, dtype=_VALUE_DTYPE)
        if vals.ndim != 1 or vals.size != n_reports:
            raise ValueError(
                f"values segment must be a 1-D array of {n_reports} "
                f"elements, got shape {vals.shape}"
            )
        flags |= _STATE_HAS_VALUES
        body += vals.tobytes()
    if user_ids is not None:
        ids = np.ascontiguousarray(user_ids, dtype=_ID_DTYPE)
        if ids.ndim != 1 or ids.size != n_reports:
            raise ValueError(
                f"user_ids segment must be a 1-D array of {n_reports} "
                f"elements, got shape {ids.shape}"
            )
        flags |= _STATE_HAS_IDS
        body += ids.tobytes()
    header = _STATE_HEADER.pack(
        int(shard), int(t), int(n_reports), flags, 0, 0, float(total)
    )
    return header + body


def decode_shard_state(payload: bytes, copy: bool = False) -> ShardSlotState:
    """Inverse of :func:`encode_shard_state`.

    Segments default to zero-copy read-only views into ``payload``
    (``copy=False``); the root aggregator consumes them immediately, so
    the views never outlive the frame.  Raises ``ValueError`` on
    truncated or mis-sized payloads.
    """
    if len(payload) < _STATE_HEADER.size:
        raise ValueError(
            f"shard-state payload truncated: {len(payload)} bytes is "
            f"shorter than the {_STATE_HEADER.size}-byte header"
        )
    shard, t, n_reports, flags, _, _, total = _STATE_HEADER.unpack_from(payload)
    known = _STATE_HAS_VALUES | _STATE_HAS_IDS
    if flags & ~known:
        raise ValueError(
            f"unknown shard-state flags 0x{flags:02x}; this decoder "
            f"speaks payload version {SHARD_STATE_PAYLOAD_VERSION}"
        )
    expected = _STATE_HEADER.size
    if flags & _STATE_HAS_VALUES:
        expected += n_reports * _VALUE_DTYPE.itemsize
    if flags & _STATE_HAS_IDS:
        expected += n_reports * _ID_DTYPE.itemsize
    if len(payload) != expected:
        raise ValueError(
            f"shard-state payload for {n_reports} reports with flags "
            f"0x{flags:02x} must be {expected} bytes, got {len(payload)}"
        )
    offset = _STATE_HEADER.size
    values = user_ids = None
    if flags & _STATE_HAS_VALUES:
        values = np.frombuffer(payload, dtype=_VALUE_DTYPE, count=n_reports, offset=offset)
        offset += n_reports * _VALUE_DTYPE.itemsize
        if copy:
            values = values.astype(float)
    if flags & _STATE_HAS_IDS:
        user_ids = np.frombuffer(payload, dtype=_ID_DTYPE, count=n_reports, offset=offset)
        if copy:
            user_ids = user_ids.astype(np.intp)
    return ShardSlotState(
        shard=int(shard),
        t=int(t),
        n_reports=int(n_reports),
        total=float(total),
        values=values,
        user_ids=user_ids,
    )
