"""Wire-format dataclasses for the user -> collector protocol (Fig. 1)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Report"]


@dataclass(frozen=True)
class Report:
    """One sanitized value sent by a user at a time slot.

    Attributes:
        user_id: stable identifier of the reporting user.
        t: time-slot index.
        value: the perturbed value (already LDP-sanitized; the collector
            never sees anything else).
    """

    user_id: int
    t: int
    value: float

    def __post_init__(self) -> None:
        if self.user_id < 0:
            raise ValueError(f"user_id must be non-negative, got {self.user_id}")
        if self.t < 0:
            raise ValueError(f"t must be non-negative, got {self.t}")
        if not isinstance(self.value, (int, float)):
            raise TypeError("value must be a real number")
