"""Multi-user collection protocol: user agents, collector, simulation."""

from .collector import Collector
from .messages import Report
from .simulation import SimulationResult, run_protocol
from .user import ONLINE_ALGORITHMS, UserAgent

__all__ = [
    "Report",
    "UserAgent",
    "Collector",
    "SimulationResult",
    "run_protocol",
    "ONLINE_ALGORITHMS",
]
