"""Multi-user collection protocol: user agents, collector, simulation."""

from .collector import Collector, CollectorShardState
from .messages import (
    BATCH_PAYLOAD_VERSION,
    Report,
    decode_report_batch,
    encode_report_batch,
)
from .simulation import SimulationResult, population_mean_mse, run_protocol
from .user import ONLINE_ALGORITHMS, UserAgent
from .vectorized import (
    BATCH_ALGORITHMS,
    PopulationGroup,
    PopulationSlotEngine,
    VectorizedSimulationResult,
    run_protocol_vectorized,
)

__all__ = [
    "Report",
    "BATCH_PAYLOAD_VERSION",
    "encode_report_batch",
    "decode_report_batch",
    "UserAgent",
    "Collector",
    "CollectorShardState",
    "SimulationResult",
    "run_protocol",
    "population_mean_mse",
    "ONLINE_ALGORITHMS",
    "BATCH_ALGORITHMS",
    "PopulationGroup",
    "PopulationSlotEngine",
    "VectorizedSimulationResult",
    "run_protocol_vectorized",
]
