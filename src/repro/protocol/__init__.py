"""Multi-user collection protocol: user agents, collector, simulation."""

from .collector import Collector, CollectorShardState
from .messages import Report
from .simulation import SimulationResult, population_mean_mse, run_protocol
from .user import ONLINE_ALGORITHMS, UserAgent
from .vectorized import (
    BATCH_ALGORITHMS,
    PopulationGroup,
    PopulationSlotEngine,
    VectorizedSimulationResult,
    run_protocol_vectorized,
)

__all__ = [
    "Report",
    "UserAgent",
    "Collector",
    "CollectorShardState",
    "SimulationResult",
    "run_protocol",
    "population_mean_mse",
    "ONLINE_ALGORITHMS",
    "BATCH_ALGORITHMS",
    "PopulationGroup",
    "PopulationSlotEngine",
    "VectorizedSimulationResult",
    "run_protocol_vectorized",
]
