"""User-side agent: owns a private stream, emits sanitized reports.

Implements Step 1-2 of the paper's Fig. 1 protocol.  The agent wraps an
online perturber, so all deviation bookkeeping and budget accounting
happen locally — the only thing that ever leaves the agent is a
:class:`~repro.protocol.messages.Report` carrying the perturbed value.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from .._validation import ensure_stream
from ..core.online import OnlineAPP, OnlineCAPP, OnlineIPP, OnlinePerturber, OnlineSWDirect
from .messages import Report

__all__ = ["UserAgent", "ONLINE_ALGORITHMS"]

#: registry of online perturbers by paper name
ONLINE_ALGORITHMS = {
    "sw-direct": OnlineSWDirect,
    "ipp": OnlineIPP,
    "app": OnlineAPP,
    "capp": OnlineCAPP,
}


class UserAgent:
    """A distributed user holding one private stream.

    Args:
        user_id: identifier included in every report.
        stream: the user's true values in ``[0, 1]``.
        algorithm: online perturber name (``sw-direct``/``ipp``/``app``/
            ``capp``) or a factory ``() -> OnlinePerturber``.
        epsilon, w: w-event privacy parameters.
        rng: the user's local randomness.
    """

    def __init__(
        self,
        user_id: int,
        stream: Sequence[float],
        algorithm: "str | Callable[[], OnlinePerturber]" = "capp",
        epsilon: float = 1.0,
        w: int = 10,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.user_id = int(user_id)
        self._stream = ensure_stream(stream)
        if self._stream.min() < 0.0 or self._stream.max() > 1.0:
            raise ValueError("user stream must lie in [0, 1]")
        if callable(algorithm):
            self._perturber = algorithm()
        else:
            key = algorithm.lower()
            if key not in ONLINE_ALGORITHMS:
                known = ", ".join(sorted(ONLINE_ALGORITHMS))
                raise KeyError(f"unknown online algorithm {algorithm!r}; known: {known}")
            self._perturber = ONLINE_ALGORITHMS[key](epsilon, w, rng)
        self._cursor = 0

    @property
    def remaining(self) -> int:
        """Slots not yet reported."""
        return self._stream.size - self._cursor

    @property
    def perturber(self) -> OnlinePerturber:
        """The wrapped online perturber (exposes the privacy ledger)."""
        return self._perturber

    def true_value(self, t: int) -> float:
        """The user's private value (local use only, e.g. for evaluation)."""
        return float(self._stream[t])

    def step(self) -> Report:
        """Sanitize and emit the next slot's report.

        Raises:
            StopIteration: when the stream is exhausted.
        """
        if self._cursor >= self._stream.size:
            raise StopIteration("user stream exhausted")
        value = float(self._stream[self._cursor])
        report = self._perturber.submit(value)
        message = Report(user_id=self.user_id, t=self._cursor, value=report)
        self._cursor += 1
        return message

    def skip(self) -> None:
        """Skip the current slot without reporting (offline / dropout).

        The slot spends no budget; the next :meth:`step` reports the
        following slot.
        """
        if self._cursor >= self._stream.size:
            raise StopIteration("user stream exhausted")
        self._perturber.skip()
        self._cursor += 1

    def reports(self) -> Iterator[Report]:
        """Iterate over all remaining reports."""
        while self.remaining:
            yield self.step()
