"""Collector-side aggregation service (Step 3 of the Fig. 1 protocol).

The collector ingests sanitized :class:`~repro.protocol.messages.Report`
messages and maintains per-slot cross-user aggregates: population means,
per-user report series (for stream publication with optional incremental
smoothing), and on-demand EM distribution estimates over any slot.

The collector never touches true values — everything it computes is
post-processing of LDP outputs, hence privacy-free.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

import numpy as np

from .._validation import ensure_epsilon, ensure_positive_int
from ..core.online import OnlineSmoother
from ..core.smoothing import simple_moving_average
from ..mechanisms import SquareWaveMechanism
from .messages import Report

__all__ = ["Collector"]


class Collector:
    """Aggregates sanitized reports from many users.

    Args:
        epsilon_per_report: the per-report budget users ran with — needed
            only for EM distribution reconstruction (the SW channel shape
            depends on it); pass ``None`` to disable distribution queries.
        smoothing_window: odd SMA window applied by publication queries;
            ``None`` publishes raw report series.
    """

    def __init__(
        self,
        epsilon_per_report: Optional[float] = None,
        smoothing_window: Optional[int] = 3,
    ) -> None:
        if epsilon_per_report is not None:
            epsilon_per_report = ensure_epsilon(
                epsilon_per_report, "epsilon_per_report"
            )
        if smoothing_window is not None:
            smoothing_window = ensure_positive_int(smoothing_window, "smoothing_window")
            if smoothing_window % 2 == 0:
                raise ValueError("smoothing_window must be odd")
        self.epsilon_per_report = epsilon_per_report
        self.smoothing_window = smoothing_window
        self._by_slot: Dict[int, List[float]] = defaultdict(list)
        self._by_user: Dict[int, Dict[int, float]] = defaultdict(dict)
        self._n_reports = 0

    # -- ingestion -------------------------------------------------------

    def ingest(self, report: Report) -> None:
        """Record one report (duplicate (user, t) pairs are rejected)."""
        if report.t in self._by_user[report.user_id]:
            raise ValueError(
                f"duplicate report for user {report.user_id} at t={report.t}"
            )
        self._by_user[report.user_id][report.t] = float(report.value)
        self._by_slot[report.t].append(float(report.value))
        self._n_reports += 1

    def ingest_many(self, reports: "list[Report]") -> None:
        for report in reports:
            self.ingest(report)

    def ingest_batch(
        self,
        t: int,
        user_ids: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Record one slot's reports for many users in a single call.

        The batch entry point of the vectorized protocol engine: instead
        of ``n_users`` :class:`Report` objects per slot, the engine hands
        over the participating users' ids and their perturbed values as
        parallel arrays.  Semantically equivalent to ingesting the
        corresponding reports one by one (duplicates rejected, same
        aggregates), but without per-report object construction.

        Args:
            t: the time slot every value belongs to.
            user_ids: ``(k,)`` non-negative, distinct user ids.
            values: ``(k,)`` perturbed values aligned with ``user_ids``.
        """
        t = int(t)
        if t < 0:
            raise ValueError(f"t must be non-negative, got {t}")
        vals = np.asarray(values, dtype=float)
        ids = np.asarray(user_ids)
        if vals.ndim != 1 or ids.shape != vals.shape:
            raise ValueError(
                f"user_ids and values must be aligned 1-D arrays, got "
                f"shapes {ids.shape} and {vals.shape}"
            )
        if ids.size == 0:
            return
        if not np.issubdtype(ids.dtype, np.integer):
            raise TypeError(f"user_ids must be integers, got dtype {ids.dtype}")
        if ids.min() < 0:
            raise ValueError(f"user_id must be non-negative, got {ids.min()}")
        if not np.all(np.isfinite(vals)):
            raise ValueError("report values must be finite")
        id_list = ids.tolist()
        if len(set(id_list)) != len(id_list):
            raise ValueError(f"duplicate user ids in batch at t={t}")
        # Validate against history before mutating anything, so a rejected
        # batch leaves the collector untouched.
        for uid in id_list:
            if t in self._by_user.get(uid, ()):
                raise ValueError(f"duplicate report for user {uid} at t={t}")
        val_list = vals.tolist()
        by_user = self._by_user
        for uid, value in zip(id_list, val_list):
            by_user[uid][t] = value
        self._by_slot[t].extend(val_list)
        self._n_reports += len(val_list)

    # -- inspection ------------------------------------------------------

    @property
    def n_reports(self) -> int:
        return self._n_reports

    @property
    def n_users(self) -> int:
        return len(self._by_user)

    def slots(self) -> "list[int]":
        """Time slots with at least one report, sorted."""
        return sorted(self._by_slot)

    # -- aggregate queries -------------------------------------------------

    def population_mean(self, t: int) -> float:
        """Cross-user mean of reports at slot ``t``."""
        values = self._by_slot.get(t)
        if not values:
            raise KeyError(f"no reports at slot {t}")
        return float(np.mean(values))

    def population_mean_series(self) -> np.ndarray:
        """Population mean at every observed slot (sorted by slot)."""
        return np.array([self.population_mean(t) for t in self.slots()])

    def user_series(self, user_id: int) -> np.ndarray:
        """One user's report series ordered by slot."""
        per_user = self._by_user.get(user_id)
        if not per_user:
            raise KeyError(f"no reports from user {user_id}")
        return np.array([per_user[t] for t in sorted(per_user)])

    def publish_user_stream(self, user_id: int) -> np.ndarray:
        """The published (optionally smoothed) stream for one user."""
        series = self.user_series(user_id)
        if self.smoothing_window is None or series.size == 1:
            return series
        return simple_moving_average(series, self.smoothing_window)

    def user_subsequence_mean(self, user_id: int, start: int, end: int) -> float:
        """Estimated mean of one user's subsequence ``[start, end]``."""
        per_user = self._by_user.get(user_id)
        if not per_user:
            raise KeyError(f"no reports from user {user_id}")
        values = [per_user[t] for t in range(start, end + 1) if t in per_user]
        if not values:
            raise KeyError(f"user {user_id} has no reports in [{start}, {end}]")
        return float(np.mean(values))

    def crowd_mean_estimates(self, start: int, end: int) -> np.ndarray:
        """Per-user subsequence-mean estimates over ``[start, end]``.

        The input to crowd-level distribution analysis (Fig. 8).
        """
        estimates = [
            self.user_subsequence_mean(user_id, start, end)
            for user_id in sorted(self._by_user)
        ]
        return np.array(estimates)

    def estimate_slot_distribution(self, t: int, n_bins: int = 32) -> np.ndarray:
        """EM-reconstructed distribution of true values at slot ``t``.

        Requires ``epsilon_per_report`` (the SW channel is budget-shaped).
        Only statistically meaningful when many users reported at ``t``.
        """
        if self.epsilon_per_report is None:
            raise RuntimeError(
                "distribution queries need epsilon_per_report at construction"
            )
        values = self._by_slot.get(t)
        if not values:
            raise KeyError(f"no reports at slot {t}")
        mech = SquareWaveMechanism(self.epsilon_per_report)
        return mech.estimate_distribution(np.asarray(values), n_bins=n_bins)

    def streaming_smoother(self) -> OnlineSmoother:
        """A fresh incremental smoother matching this collector's window."""
        if self.smoothing_window is None:
            raise RuntimeError("collector was configured without smoothing")
        return OnlineSmoother(self.smoothing_window)
