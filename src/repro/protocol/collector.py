"""Collector-side aggregation service (Step 3 of the Fig. 1 protocol).

The collector ingests sanitized :class:`~repro.protocol.messages.Report`
messages and maintains per-slot cross-user aggregates: population means,
per-user report series (for stream publication with optional incremental
smoothing), and on-demand EM distribution estimates over any slot.

All aggregate state lives in a :class:`CollectorShardState` — per-slot
running sums and counts (O(1) mean queries), per-slot report arrays (for
distribution reconstruction), and optionally the per-user report dicts.
Shard states form a commutative monoid under
:meth:`CollectorShardState.merge`, so a population can be split across
processes or machines, aggregated independently, and combined into one
collector whose answers equal single-collector ingestion (see
:mod:`repro.runtime`).

The collector never touches true values — everything it computes is
post-processing of LDP outputs, hence privacy-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .._validation import ensure_epsilon, ensure_positive_int
from ..adversary.policies import RobustPolicy, make_policy
from ..core.online import OnlineSmoother
from ..core.smoothing import simple_moving_average
from ..mechanisms import SquareWaveMechanism
from .messages import Report

__all__ = ["Collector", "CollectorShardState"]


@dataclass
class CollectorShardState:
    """Mergeable aggregate state of one collector (or collector shard).

    Holds everything the collector's queries need: per-slot running sums
    and report counts, per-slot report value arrays, and — unless user
    tracking is disabled — each user's ``{slot: value}`` dict.  States are
    associative and commutative under :meth:`merge` (sums add, counts add,
    report arrays concatenate, user dicts union), so shard states computed
    over disjoint user subsets combine into the state a single collector
    would have built ingesting every report itself.

    The per-slot report arrays are kept as lists of *segments* — a
    ``(k,)`` float64 array per ingested batch (8 bytes per report and
    O(1) merging, which is what makes holding a merged million-user
    collector in one process cheap), or a bare float per scalar ingest so
    the per-report reference path pays no array-construction overhead.
    :meth:`slot_reports` concatenates (and caches) a slot's segments on
    demand.

    Args:
        track_users: keep the per-user dict-of-dicts.  Required for
            per-user publication queries and cross-batch duplicate
            detection, but O(users x slots) in memory — population-scale
            runs pass ``False`` and keep only the O(slots x reports)
            aggregates.
        keep_reports: retain the per-slot report arrays.  Required for
            EM distribution reconstruction, but likewise O(users x slots)
            — at extreme scale pass ``False`` and the state keeps only
            the O(slots) sums/counts that mean queries need.
    """

    track_users: bool = True
    keep_reports: bool = True
    slot_sums: Dict[int, float] = field(default_factory=dict)
    slot_counts: Dict[int, int] = field(default_factory=dict)
    slot_values: Dict[int, List["np.ndarray | float"]] = field(default_factory=dict)
    by_user: Dict[int, Dict[int, float]] = field(default_factory=dict)
    n_reports: int = 0
    #: optional robust-aggregation policy (:mod:`repro.adversary`): a
    #: ``clip`` policy transforms every value at ingestion time (before
    #: it enters any running sum, preserving the fold order exactly);
    #: ``median-of-means`` additionally accumulates per-group sums and
    #: counts keyed by the ingesting batch's ``group`` label (the global
    #: chunk index).  Merging requires both operands to carry the same
    #: policy.
    robust_policy: Optional[RobustPolicy] = None
    group_sums: Dict[int, Dict[int, float]] = field(default_factory=dict)
    group_counts: Dict[int, Dict[int, int]] = field(default_factory=dict)

    # -- ingestion -------------------------------------------------------

    def add_report(
        self, user_id: int, t: int, value: float, group: int = 0
    ) -> None:
        """Fold one report in (scalar fast path — no array per report)."""
        policy = self.robust_policy
        if policy is not None:
            value = policy.transform_scalar(value)
        if self.track_users:
            self.by_user.setdefault(user_id, {})[t] = value
        if self.keep_reports:
            self.slot_values.setdefault(t, []).append(value)
        self.slot_sums[t] = self.slot_sums.get(t, 0.0) + value
        self.slot_counts[t] = self.slot_counts.get(t, 0) + 1
        self.n_reports += 1
        if policy is not None and policy.uses_groups:
            sums = self.group_sums.setdefault(t, {})
            counts = self.group_counts.setdefault(t, {})
            sums[group] = sums.get(group, 0.0) + value
            counts[group] = counts.get(group, 0) + 1

    def add_slot_batch(
        self, t: int, ids: "list[int]", values: np.ndarray, group: int = 0
    ) -> None:
        """Fold one slot's reports in (inputs already validated).

        ``group`` labels the batch's shard group for the
        ``median-of-means`` policy; every execution mode passes the
        *global* chunk index, so group aggregates are identical across
        execution modes for the same chunking.
        """
        segment = np.array(values, dtype=float)  # own the memory
        policy = self.robust_policy
        if policy is not None:
            segment = np.asarray(policy.transform(segment), dtype=float)
        if self.track_users:
            by_user = self.by_user
            for uid, value in zip(ids, segment.tolist()):
                by_user.setdefault(uid, {})[t] = value
        if self.keep_reports:
            self.slot_values.setdefault(t, []).append(segment)
        total = float(segment.sum())
        self.slot_sums[t] = self.slot_sums.get(t, 0.0) + total
        self.slot_counts[t] = self.slot_counts.get(t, 0) + segment.size
        self.n_reports += segment.size
        if policy is not None and policy.uses_groups:
            sums = self.group_sums.setdefault(t, {})
            counts = self.group_counts.setdefault(t, {})
            sums[group] = sums.get(group, 0.0) + total
            counts[group] = counts.get(group, 0) + segment.size

    def slot_reports(self, t: int) -> np.ndarray:
        """All reports ingested at slot ``t`` (ingestion order, compacted).

        Segments may be ``(k,)`` arrays (batch ingestion) or bare floats
        (scalar ingestion); ``hstack`` flattens both.  The compacted form
        is cached back, so repeated queries touch one array.
        """
        if not self.keep_reports:
            raise RuntimeError(
                "per-slot report queries need keep_reports=True "
                "(disabled to bound memory at population scale)"
            )
        segments = self.slot_values.get(t)
        if not segments:
            return np.zeros(0)
        if len(segments) > 1 or not isinstance(segments[0], np.ndarray):
            self.slot_values[t] = segments = [np.hstack(segments)]
        return segments[0]

    def has_report(self, user_id: int, t: int) -> bool:
        """Whether ``(user_id, t)`` was already ingested (needs tracking)."""
        return self.track_users and t in self.by_user.get(user_id, ())

    # -- merge algebra ---------------------------------------------------

    def merge_in_place(self, other: "CollectorShardState") -> None:
        """Absorb ``other`` into this state (``other`` is not mutated).

        Raises:
            ValueError: if both states track users and share any
                (user, slot) pair — the duplicate-report rule
                :meth:`Collector.ingest` enforces, applied across shards
                — or if the states carry different robust policies (a
                mixed-policy fold has no well-defined estimate).
        """
        if self.robust_policy != other.robust_policy:
            raise ValueError(
                f"cannot merge shard states with different robust "
                f"policies ({self.robust_policy!r} vs "
                f"{other.robust_policy!r})"
            )
        if self.track_users and other.track_users:
            for uid, series in other.by_user.items():
                mine = self.by_user.get(uid)
                if mine:
                    overlap = mine.keys() & series.keys()
                    if overlap:
                        raise ValueError(
                            f"merge overlap: duplicate report for user {uid} "
                            f"at t={min(overlap)}"
                        )
        else:
            self.track_users = False
            self.by_user.clear()
        if not (self.keep_reports and other.keep_reports):
            self.keep_reports = False
            self.slot_values.clear()
        self.n_reports += other.n_reports
        for t, total in other.slot_sums.items():
            self.slot_sums[t] = self.slot_sums.get(t, 0.0) + total
        for t, count in other.slot_counts.items():
            self.slot_counts[t] = self.slot_counts.get(t, 0) + count
        if self.keep_reports:
            for t, values in other.slot_values.items():
                self.slot_values.setdefault(t, []).extend(values)
        if self.track_users:
            for uid, series in other.by_user.items():
                self.by_user.setdefault(uid, {}).update(series)
        for t, groups in other.group_sums.items():
            mine = self.group_sums.setdefault(t, {})
            for group, total in groups.items():
                mine[group] = mine.get(group, 0.0) + total
        for t, groups in other.group_counts.items():
            mine_counts = self.group_counts.setdefault(t, {})
            for group, count in groups.items():
                mine_counts[group] = mine_counts.get(group, 0) + count

    def merge(self, other: "CollectorShardState") -> "CollectorShardState":
        """Combined state of two shards (neither operand is mutated).

        Associative and commutative up to floating-point rounding of the
        slot sums and the ordering of the concatenated report arrays;
        counts and the multiset of (user, slot, value) triples combine
        exactly.  The merged state tracks users (or retains report
        arrays) only when both operands do — a shard that dropped state
        cannot be reconstructed.
        """
        merged = self.copy()
        merged.merge_in_place(other)
        return merged

    def copy(self) -> "CollectorShardState":
        """Independent copy (segments are shared — they are never mutated)."""
        return CollectorShardState(
            track_users=self.track_users,
            keep_reports=self.keep_reports,
            slot_sums=dict(self.slot_sums),
            slot_counts=dict(self.slot_counts),
            slot_values={t: list(v) for t, v in self.slot_values.items()},
            by_user={uid: dict(s) for uid, s in self.by_user.items()},
            n_reports=self.n_reports,
            robust_policy=self.robust_policy,
            group_sums={t: dict(g) for t, g in self.group_sums.items()},
            group_counts={t: dict(g) for t, g in self.group_counts.items()},
        )


class Collector:
    """Aggregates sanitized reports from many users.

    Args:
        epsilon_per_report: the per-report budget users ran with — needed
            only for EM distribution reconstruction (the SW channel shape
            depends on it); pass ``None`` to disable distribution queries.
        smoothing_window: odd SMA window applied by publication queries;
            ``None`` publishes raw report series.
        track_users: keep per-user report dicts (default).  Population-
            scale runs pass ``False`` to drop the O(users x slots) dict;
            aggregate queries (means, distributions) still work, per-user
            queries and cross-batch duplicate detection raise/disable.
        keep_reports: retain per-slot report arrays (default).  Pass
            ``False`` at extreme scale to keep only O(slots) running
            aggregates; mean queries still work, distribution queries
            raise.
        robust_policy: optional robust-aggregation policy — a
            :class:`~repro.adversary.RobustPolicy`, a kind name
            (``"clip"``, ``"trim"``, ``"median-of-means"``), a policy
            dict, or ``None``/``"none"`` for the plain fold.  ``clip``
            transforms values at ingestion; ``trim`` and
            ``median-of-means`` change the :meth:`population_mean`
            query fold (``trim`` requires ``keep_reports=True``).
    """

    def __init__(
        self,
        epsilon_per_report: Optional[float] = None,
        smoothing_window: Optional[int] = 3,
        track_users: bool = True,
        keep_reports: bool = True,
        robust_policy: "RobustPolicy | str | dict | None" = None,
    ) -> None:
        if epsilon_per_report is not None:
            epsilon_per_report = ensure_epsilon(
                epsilon_per_report, "epsilon_per_report"
            )
        if smoothing_window is not None:
            smoothing_window = ensure_positive_int(smoothing_window, "smoothing_window")
            if smoothing_window % 2 == 0:
                raise ValueError("smoothing_window must be odd")
        policy = make_policy(robust_policy)
        if policy is not None and policy.needs_reports and not keep_reports:
            raise ValueError(
                f"robust policy {policy.kind!r} reads retained report "
                "arrays; it requires keep_reports=True"
            )
        self.epsilon_per_report = epsilon_per_report
        self.smoothing_window = smoothing_window
        self._state = CollectorShardState(
            track_users=bool(track_users),
            keep_reports=bool(keep_reports),
            robust_policy=policy,
        )

    # -- shard state -----------------------------------------------------

    @property
    def state(self) -> CollectorShardState:
        """The collector's aggregate state (live reference, not a copy)."""
        return self._state

    @property
    def track_users(self) -> bool:
        return self._state.track_users

    @property
    def keep_reports(self) -> bool:
        return self._state.keep_reports

    @property
    def robust_policy(self) -> Optional[RobustPolicy]:
        return self._state.robust_policy

    def restore_state(self, state: CollectorShardState) -> None:
        """Replace this collector's aggregate state wholesale.

        The checkpoint-restore entry point of the write-ahead log
        (:mod:`repro.wal`): unlike :meth:`merge_state` — which folds the
        restored sums into fresh zeros and is therefore only equal up to
        floating-point identities like ``0.0 + -0.0`` — replacement is
        bit-exact by construction.  Only an *empty* collector may be
        restored, and the state's memory switches must match the
        collector's configuration.
        """
        if not isinstance(state, CollectorShardState):
            raise TypeError(
                f"expected a CollectorShardState, got {type(state).__name__}"
            )
        if self._state.n_reports or self._state.slot_sums or self._state.slot_counts:
            raise RuntimeError(
                "restore_state needs an empty collector (it replaces, "
                "never merges)"
            )
        if (
            state.track_users != self._state.track_users
            or state.keep_reports != self._state.keep_reports
        ):
            raise ValueError(
                "checkpoint state was built with "
                f"track_users={state.track_users}/"
                f"keep_reports={state.keep_reports} but this collector is "
                f"configured with track_users={self._state.track_users}/"
                f"keep_reports={self._state.keep_reports}"
            )
        if state.robust_policy != self._state.robust_policy:
            raise ValueError(
                "checkpoint state was built with robust_policy="
                f"{state.robust_policy!r} but this collector is "
                f"configured with {self._state.robust_policy!r}"
            )
        self._state = state

    def merge_state(self, other: "CollectorShardState | Collector") -> None:
        """Absorb another collector's (or shard's) aggregate state.

        After merging every shard of a partitioned population, this
        collector answers aggregate queries exactly as if it had ingested
        every report itself (see the merge-algebra tests).
        """
        state = other._state if isinstance(other, Collector) else other
        self._state.merge_in_place(state)

    def _require_user_tracking(self) -> Dict[int, Dict[int, float]]:
        if not self._state.track_users:
            raise RuntimeError(
                "per-user queries need track_users=True "
                "(disabled to bound memory at population scale)"
            )
        return self._state.by_user

    # -- ingestion -------------------------------------------------------

    def ingest(self, report: Report) -> None:
        """Record one report (duplicate (user, t) pairs are rejected)."""
        if self._state.has_report(report.user_id, report.t):
            raise ValueError(
                f"duplicate report for user {report.user_id} at t={report.t}"
            )
        self._state.add_report(int(report.user_id), int(report.t), float(report.value))

    def ingest_many(self, reports: "list[Report]") -> None:
        for report in reports:
            self.ingest(report)

    def ingest_batch(
        self,
        t: int,
        user_ids: np.ndarray,
        values: np.ndarray,
        group: int = 0,
    ) -> None:
        """Record one slot's reports for many users in a single call.

        The batch entry point of the vectorized protocol engine: instead
        of ``n_users`` :class:`Report` objects per slot, the engine hands
        over the participating users' ids and their perturbed values as
        parallel arrays.  Semantically equivalent to ingesting the
        corresponding reports one by one (duplicates rejected, same
        aggregates), but without per-report object construction.

        Args:
            t: the time slot every value belongs to.
            user_ids: ``(k,)`` non-negative, distinct user ids.
            values: ``(k,)`` perturbed values aligned with ``user_ids``.
            group: shard-group label for the ``median-of-means`` robust
                policy (the batch's global chunk index; ignored
                otherwise).
        """
        t = int(t)
        if t < 0:
            raise ValueError(f"t must be non-negative, got {t}")
        vals = np.asarray(values, dtype=float)
        ids = np.asarray(user_ids)
        if vals.ndim != 1 or ids.shape != vals.shape:
            raise ValueError(
                f"user_ids and values must be aligned 1-D arrays, got "
                f"shapes {ids.shape} and {vals.shape}"
            )
        if ids.size == 0:
            return
        if not np.issubdtype(ids.dtype, np.integer):
            raise TypeError(f"user_ids must be integers, got dtype {ids.dtype}")
        if ids.min() < 0:
            raise ValueError(f"user_id must be non-negative, got {ids.min()}")
        if not np.all(np.isfinite(vals)):
            raise ValueError("report values must be finite")
        id_list = ids.tolist()
        if len(set(id_list)) != len(id_list):
            raise ValueError(f"duplicate user ids in batch at t={t}")
        # Validate against history before mutating anything, so a rejected
        # batch leaves the collector untouched.  (Cross-batch duplicate
        # detection needs the per-user dict, hence track_users only.)
        for uid in id_list:
            if self._state.has_report(uid, t):
                raise ValueError(f"duplicate report for user {uid} at t={t}")
        self._state.add_slot_batch(t, id_list, vals, group=int(group))

    # -- inspection ------------------------------------------------------

    @property
    def n_reports(self) -> int:
        return self._state.n_reports

    @property
    def n_users(self) -> int:
        return len(self._require_user_tracking())

    def slots(self) -> "list[int]":
        """Time slots with at least one report, sorted."""
        return sorted(self._state.slot_counts)

    # -- aggregate queries -------------------------------------------------

    def population_mean(self, t: int) -> float:
        """Cross-user mean of reports at slot ``t``.

        O(1) via running sums by default.  Under a ``trim`` or
        ``median-of-means`` robust policy the query applies the policy's
        fold instead (sorted trimmed mean / median of group means) —
        both are pure functions of the slot's report multiset and group
        aggregates, so every execution mode answers identically.
        """
        count = self._state.slot_counts.get(t)
        if not count:
            raise KeyError(f"no reports at slot {t}")
        policy = self._state.robust_policy
        if policy is not None:
            return policy.slot_mean(self._state, t)
        return self._state.slot_sums[t] / count

    def population_mean_series(self) -> np.ndarray:
        """Population mean at every observed slot (sorted by slot)."""
        return np.array([self.population_mean(t) for t in self.slots()])

    def user_series(self, user_id: int) -> np.ndarray:
        """One user's report series ordered by slot."""
        per_user = self._require_user_tracking().get(user_id)
        if not per_user:
            raise KeyError(f"no reports from user {user_id}")
        return np.array([per_user[t] for t in sorted(per_user)])

    def publish_user_stream(self, user_id: int) -> np.ndarray:
        """The published (optionally smoothed) stream for one user."""
        series = self.user_series(user_id)
        if self.smoothing_window is None or series.size == 1:
            return series
        return simple_moving_average(series, self.smoothing_window)

    def user_subsequence_mean(self, user_id: int, start: int, end: int) -> float:
        """Estimated mean of one user's subsequence ``[start, end]``."""
        per_user = self._require_user_tracking().get(user_id)
        if not per_user:
            raise KeyError(f"no reports from user {user_id}")
        values = [per_user[t] for t in range(start, end + 1) if t in per_user]
        if not values:
            raise KeyError(f"user {user_id} has no reports in [{start}, {end}]")
        return float(np.mean(values))

    def crowd_mean_estimates(self, start: int, end: int) -> np.ndarray:
        """Per-user subsequence-mean estimates over ``[start, end]``.

        The input to crowd-level distribution analysis (Fig. 8).
        """
        estimates = [
            self.user_subsequence_mean(user_id, start, end)
            for user_id in sorted(self._require_user_tracking())
        ]
        return np.array(estimates)

    def estimate_slot_distribution(self, t: int, n_bins: int = 32) -> np.ndarray:
        """EM-reconstructed distribution of true values at slot ``t``.

        Requires ``epsilon_per_report`` (the SW channel is budget-shaped).
        Only statistically meaningful when many users reported at ``t``.
        """
        if self.epsilon_per_report is None:
            raise RuntimeError(
                "distribution queries need epsilon_per_report at construction"
            )
        values = self._state.slot_reports(t)
        if not values.size:
            raise KeyError(f"no reports at slot {t}")
        mech = SquareWaveMechanism(self.epsilon_per_report)
        return mech.estimate_distribution(values, n_bins=n_bins)

    def streaming_smoother(self) -> OnlineSmoother:
        """A fresh incremental smoother matching this collector's window."""
        if self.smoothing_window is None:
            raise RuntimeError("collector was configured without smoothing")
        return OnlineSmoother(self.smoothing_window)
