"""Vectorized population engine for the Fig. 1 protocol hot path.

:func:`~repro.protocol.simulation.run_protocol` drives the simulation one
``UserAgent.step()`` Python call at a time — ``n_users * T`` object
dispatches, which caps benchmarks at toy population sizes.  This module
runs the same protocol slot-by-slot across the *whole population*: users
are grouped by online algorithm, each group's per-user state (accumulated
deviations, budget ledgers) lives in ``(n_group,)`` NumPy arrays inside a
:class:`~repro.core.online.BatchOnlinePerturber`, and every slot is one
vectorized mechanism draw plus one batch ingest into the collector.

Participation/dropout is handled with boolean masks: a masked-out user
spends no budget and leaves no report, exactly like
:meth:`UserAgent.skip`.  The per-user path remains the reference
implementation; the two are distributionally equivalent (same estimates
within sampling tolerance, identical budget accounting — tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from .._validation import ensure_rng, ensure_stream_matrix
from ..adversary.attacks import AttackSpec, make_attack
from ..core.online import (
    BatchOnlineAPP,
    BatchOnlineCAPP,
    BatchOnlineIPP,
    BatchOnlinePerturber,
    BatchOnlineSWDirect,
)
from .collector import Collector
from .simulation import population_mean_mse

__all__ = [
    "BATCH_ALGORITHMS",
    "PopulationGroup",
    "PopulationSlotEngine",
    "VectorizedSimulationResult",
    "run_protocol_vectorized",
]

#: direct-construction fast path for the four core engines (mirrors
#: :data:`repro.protocol.user.ONLINE_ALGORITHMS`); every other estimator
#: name resolves through the package registry (:mod:`repro.registry`),
#: so the full Table-I / Fig. 4-9 comparison set runs on this engine
BATCH_ALGORITHMS = {
    "sw-direct": BatchOnlineSWDirect,
    "ipp": BatchOnlineIPP,
    "app": BatchOnlineAPP,
    "capp": BatchOnlineCAPP,
}


@dataclass
class PopulationGroup:
    """One algorithm's user cohort inside a vectorized run.

    ``indices`` holds the members' *global* user ids (matrix row plus the
    run's ``user_id_offset``), matching the collector's keys; the engine's
    internal state arrays are addressed by position within the group.
    """

    algorithm: str
    indices: np.ndarray = field(repr=False)
    engine: BatchOnlinePerturber = field(repr=False)

    @property
    def n_users(self) -> int:
        return self.indices.size


@dataclass
class VectorizedSimulationResult:
    """Everything produced by one vectorized protocol run.

    The population analogue of
    :class:`~repro.protocol.simulation.SimulationResult`: instead of a
    list of :class:`UserAgent` objects there is one
    :class:`PopulationGroup` per distinct algorithm, each holding the
    batched engine with every member's state and budget ledger.
    """

    collector: Collector
    groups: "list[PopulationGroup]" = field(repr=False)
    true_matrix: np.ndarray = field(repr=False)

    @property
    def n_users(self) -> int:
        return self.true_matrix.shape[0]

    def population_mean_mse(self) -> float:
        """MSE between the collector's population-mean series and truth."""
        return population_mean_mse(self.collector, self.true_matrix)

    def group_for(self, user_id: int) -> "tuple[PopulationGroup, int]":
        """The group containing ``user_id`` and the user's position in it."""
        for group in self.groups:
            position = np.flatnonzero(group.indices == user_id)
            if position.size:
                return group, int(position[0])
        raise KeyError(f"no group contains user {user_id}")

    def user_algorithm(self, user_id: int) -> str:
        """The online algorithm a user ran."""
        return self.group_for(user_id)[0].algorithm

    def user_budget_spends(self, user_id: int) -> np.ndarray:
        """One user's per-slot budget spend series (the w-event ledger)."""
        group, position = self.group_for(user_id)
        return group.engine.accountant.user_spends(position)


class PopulationSlotEngine:
    """Incremental, slot-by-slot executor of the population protocol.

    Owns everything the user side of one (sub)population needs — the
    per-algorithm batched engines, the participation schedule, and the
    master generator — and sanitizes one time slot per :meth:`step` call.
    :func:`run_protocol_vectorized` drives one instance over a full
    ``(users, slots)`` matrix; the live ingestion service
    (:mod:`repro.service`) drives one instance per user-shard, advancing
    all shards in lockstep on a shared slot clock.

    Randomness contract: construction draws one group-seed block from the
    master generator and each :meth:`step` draws at most one
    participation mask, in slot order — exactly the consumption order of
    the batch run, so stepping a shard live or replaying it offline
    yields bit-identical reports for the same generator.

    Args:
        n_users: number of users driven by this engine.
        horizon: number of slots the schedule covers; :meth:`step` may be
            called at most ``horizon`` times.
        algorithm: one online-algorithm name for every user, or one name
            per user (cohorts are grouped like the batch runner).
        epsilon, w: w-event privacy parameters shared by all users.
        participation: per-(user, slot) reporting probability — scalar or
            ``(horizon,)`` schedule.
        rng: master generator (group seeds + participation masks).
        record_history: keep full per-slot budget ledgers.
        user_id_offset: global id of user row 0 (shard placement).
        attack: optional :class:`~repro.adversary.AttackSpec` — the
            engine is the single choke point every execution mode's
            reports flow through, so poisoning applied here is identical
            for the vectorized, sharded, live, gateway, and distributed
            paths.  The attack's randomness is a stateless hash of
            global user ids (never a generator draw), so an attacked run
            consumes exactly the benign run's seed streams.
    """

    def __init__(
        self,
        n_users: int,
        horizon: int,
        algorithm: "str | Sequence[str]" = "capp",
        epsilon: float = 1.0,
        w: int = 10,
        participation: "float | Sequence[float]" = 1.0,
        rng: Optional[np.random.Generator] = None,
        record_history: bool = True,
        user_id_offset: int = 0,
        attack: "AttackSpec | dict | None" = None,
    ) -> None:
        # Zero users (and, for an empty population, zero slots) are valid,
        # matching ensure_stream_matrix's contract for the batch runner.
        self.n_users = int(n_users)
        self.horizon = int(horizon)
        if self.n_users < 0:
            raise ValueError(f"n_users must be non-negative, got {n_users}")
        if self.horizon < 0 or (self.horizon == 0 and self.n_users > 0):
            raise ValueError(
                f"horizon must be positive (got {horizon}) unless the "
                "population is empty"
            )
        rng = ensure_rng(rng)

        if isinstance(algorithm, str):
            algorithms = [algorithm] * self.n_users
        else:
            algorithms = list(algorithm)
            if len(algorithms) != self.n_users:
                raise ValueError(
                    f"got {len(algorithms)} algorithm names for {self.n_users} users"
                )
        schedule = np.asarray(participation, dtype=float)
        if schedule.ndim == 0:
            if not 0.0 < float(schedule) <= 1.0:
                raise ValueError(
                    f"participation must be in (0, 1], got {participation}"
                )
            schedule = np.full(self.horizon, float(schedule))
        elif schedule.ndim == 1:
            if schedule.shape[0] != self.horizon:
                raise ValueError(
                    f"participation schedule must have one entry per slot "
                    f"({self.horizon}), got {schedule.shape[0]}"
                )
            if schedule.size and not (
                np.all(schedule >= 0.0) and np.all(schedule <= 1.0)
            ):
                raise ValueError("participation schedule entries must lie in [0, 1]")
        else:
            raise ValueError(
                "participation must be a scalar or a (T,) per-slot schedule, "
                f"got shape {schedule.shape}"
            )
        user_id_offset = int(user_id_offset)
        if user_id_offset < 0:
            raise ValueError(
                f"user_id_offset must be non-negative, got {user_id_offset}"
            )

        # Group users by algorithm (first-appearance order, like the
        # paper's heterogeneous deployments); one batched engine per cohort.
        members: "dict[str, list[int]]" = {}
        for i, name in enumerate(algorithms):
            members.setdefault(name.lower(), []).append(i)

        def build_engine(name: str, n_members: int, generator):
            # Core four: construct directly (the original fast path, kept
            # bit-identical for the pinned golden fixtures).  Everything
            # else resolves through the capability-aware registry, which
            # also owns the unknown-name diagnostics.
            cls = BATCH_ALGORITHMS.get(name)
            if cls is not None:
                return cls(
                    epsilon, w, n_members, generator, record_history=record_history
                )
            from ..registry import make_batch_engine

            return make_batch_engine(
                name,
                epsilon,
                w,
                n_members,
                rng=generator,
                horizon=self.horizon,
                record_history=record_history,
            )

        # Validate names (and surface close-match suggestions) before any
        # generator draw, so a typo cannot perturb the seed stream; also
        # reject up front any estimator whose capability flags rule out
        # this run's participation schedule, instead of failing mid-run
        # at whichever slot first masks a user out.
        partial = bool(schedule.size) and float(schedule.min()) < 1.0
        for name in members:
            if name not in BATCH_ALGORITHMS:
                from ..registry import capabilities

                flags = capabilities(name)
                if partial and not flags["participation"]:
                    raise ValueError(
                        f"algorithm {name!r} does not support partial "
                        "participation (it uploads on a calendar shared by "
                        "the whole population); run it with "
                        "participation=1.0"
                    )

        seeds = rng.integers(0, 2**63 - 1, size=len(members))
        self._group_rows = [
            np.asarray(indices, dtype=np.intp) for indices in members.values()
        ]
        self.groups = [
            PopulationGroup(
                algorithm=name,
                indices=rows + user_id_offset,
                engine=build_engine(name, rows.size, np.random.default_rng(seed)),
            )
            for (name, rows), seed in zip(zip(members, self._group_rows), seeds)
        ]
        self.user_id_offset = user_id_offset
        self._schedule = schedule
        self._rng = rng
        self._all_ids = np.arange(self.n_users) + user_id_offset
        self._t = 0
        self.attack = make_attack(attack)

    @property
    def slots_processed(self) -> int:
        """How many slots have been stepped so far."""
        return self._t

    def step(
        self, values: "Sequence[float] | np.ndarray"
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Sanitize the next slot for the whole (sub)population.

        Args:
            values: ``(n_users,)`` true values in ``[0, 1]`` for this slot
                (non-participants' entries are ignored).

        Returns:
            ``(ids, reports)`` — the participating users' global ids and
            their perturbed reports, ready for
            :meth:`~repro.protocol.Collector.ingest_batch`.  Both are
            empty when nobody participates.
        """
        if self._t >= self.horizon:
            raise RuntimeError(
                f"all {self.horizon} slots already stepped; the engine's "
                "schedule (and budget ledger) covers a fixed horizon"
            )
        column = np.asarray(values, dtype=float)
        if column.shape != (self.n_users,):
            raise ValueError(
                f"values must have shape ({self.n_users},), got {column.shape}"
            )
        if self.attack is not None:
            # Input-level poisoning (extreme): compromised users lie
            # before the mechanism runs.  The mechanism consumes the
            # same generator draws regardless of input values, so the
            # honest users' reports stay bit-identical to a benign run.
            column = self.attack.poison_inputs(self._t, self._all_ids, column)
        probability = float(self._schedule[self._t])
        mask = None
        if probability < 1.0:
            mask = self._rng.random(self.n_users) < probability
        reports = np.full(self.n_users, np.nan)
        for group, rows in zip(self.groups, self._group_rows):
            sub_mask = None if mask is None else mask[rows]
            reports[rows] = group.engine.submit(column[rows], sub_mask)
        if self.attack is not None:
            # Report-level poisoning (targeted/random): compromised
            # users bypass the mechanism and replace the reports they
            # would have sent (participation is never changed).
            reports = self.attack.poison_reports(
                self._t, self._all_ids, reports
            )
        self._t += 1
        if mask is None:
            finite = np.isfinite(reports)
            if finite.all():
                return self._all_ids, reports
            # Engines may withhold reports on some slots even at full
            # participation (e.g. sampling before its first upload); a
            # NaN report means "nothing to ingest" for that user.
            active = np.flatnonzero(finite)
        else:
            active = np.flatnonzero(mask & np.isfinite(reports))
        return active + self.user_id_offset, reports[active]

    def assert_valid(self) -> None:
        """Run every cohort's w-event budget audit (raises on overspend)."""
        for group in self.groups:
            group.engine.accountant.assert_valid()


def run_protocol_vectorized(
    streams: Sequence[Sequence[float]],
    algorithm: "str | Sequence[str]" = "capp",
    epsilon: float = 1.0,
    w: int = 10,
    smoothing_window: Optional[int] = 3,
    participation: "float | Sequence[float]" = 1.0,
    rng: Optional[np.random.Generator] = None,
    on_slot: Optional[Callable[[int], None]] = None,
    record_history: bool = True,
    user_id_offset: int = 0,
    track_users: bool = True,
    keep_reports: bool = True,
    attack: "AttackSpec | dict | None" = None,
    robust_policy=None,
    group: int = 0,
) -> VectorizedSimulationResult:
    """Simulate the full collection protocol with population batching.

    Drop-in counterpart of :func:`~repro.protocol.simulation.run_protocol`
    — same arguments, same protocol semantics, same collector queries on
    the result — but executed as ``T`` vectorized population steps
    instead of ``n_users * T`` per-user steps, which is what makes
    paper-scale populations tractable (see
    ``benchmarks/bench_throughput.py`` for the measured speedup).

    Args:
        streams: ``(n_users, T)`` matrix (or list of equal-length streams)
            of true values in ``[0, 1]``.
        algorithm: algorithm name for every user, or one name per user
            (heterogeneous populations run one batched engine per
            distinct algorithm).  Any name registered in
            :mod:`repro.registry` is accepted — the core four, the
            BA/BD/ToPL baselines, the sampling family, and the Fig. 9
            mechanism variants.
        epsilon, w: w-event privacy parameters shared by all users.
        smoothing_window: collector-side SMA window.
        participation: per-(user, slot) probability of actually reporting;
            skipped slots spend no budget and leave no report.  Either a
            single probability for the whole run or a ``(T,)`` per-slot
            schedule (how :mod:`repro.runtime.scenarios` models churn and
            dropout waves).
        rng: master generator; each algorithm group gets an independent
            child stream, participation masks are drawn from the master.
        on_slot: optional callback invoked after each slot is collected.
        record_history: keep every engine's full per-slot budget ledger
            (required by :meth:`VectorizedSimulationResult.user_budget_spends`);
            pass ``False`` to bound accountant memory at O(w) per user on
            very long horizons — the w-event invariant is enforced either
            way.
        user_id_offset: global id of the first stream row.  The sharded
            runtime (:mod:`repro.runtime`) runs each user-shard through
            this function with its shard's offset, so collector keys and
            result queries use population-global user ids everywhere.
        track_users: forwarded to the :class:`Collector`; pass ``False``
            at population scale to skip the O(users x slots) per-user
            report dict (aggregate queries still work).
        keep_reports: forwarded to the :class:`Collector`; pass ``False``
            to also drop the O(users x slots) per-slot report arrays,
            keeping only running aggregates (disables distribution
            queries).
        attack: optional :class:`~repro.adversary.AttackSpec` poisoning
            the run (see :class:`PopulationSlotEngine`).  The true
            matrix — and therefore every ground-truth metric — stays
            benign; only the engine's outputs are poisoned.
        robust_policy: optional robust-aggregation policy forwarded to
            the :class:`Collector` (see :mod:`repro.adversary`).
        group: shard-group label of this run's single chunk (the global
            chunk index under the sharded runtime), consumed by the
            ``median-of-means`` policy.

    Returns:
        A :class:`VectorizedSimulationResult` with the populated
        collector, the per-algorithm population groups (budget ledgers
        included), and the true matrix.
    """
    # Validate up front, like the reference path does at UserAgent
    # construction — otherwise invalid values hiding behind dropout masks
    # would be accepted or rejected nondeterministically.
    matrix = ensure_stream_matrix(streams)
    n_users, horizon = matrix.shape

    stepper = PopulationSlotEngine(
        n_users,
        horizon,
        algorithm=algorithm,
        epsilon=epsilon,
        w=w,
        participation=participation,
        rng=rng,
        record_history=record_history,
        user_id_offset=user_id_offset,
        attack=attack,
    )
    collector = Collector(
        epsilon_per_report=epsilon / w,
        smoothing_window=smoothing_window,
        track_users=track_users,
        keep_reports=keep_reports,
        robust_policy=robust_policy,
    )

    for t in range(horizon):
        ids, reports = stepper.step(matrix[:, t])
        if ids.size:
            collector.ingest_batch(t, ids, reports, group=group)
        if on_slot is not None:
            on_slot(t)

    stepper.assert_valid()
    return VectorizedSimulationResult(
        collector=collector, groups=stepper.groups, true_matrix=matrix
    )
