"""Pointwise error metrics (Section VI-A-2)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import ensure_stream

__all__ = ["mse", "mae", "rmse", "mean_error"]


def _pair(estimated: Sequence[float], truth: Sequence[float]) -> "tuple[np.ndarray, np.ndarray]":
    est = ensure_stream(estimated, "estimated")
    true = ensure_stream(truth, "truth")
    if est.shape != true.shape:
        raise ValueError(
            f"shape mismatch: estimated {est.shape} vs truth {true.shape}"
        )
    return est, true


def mse(estimated: Sequence[float], truth: Sequence[float]) -> float:
    """Mean squared error — the paper's mean-estimation metric."""
    est, true = _pair(estimated, truth)
    return float(np.mean((est - true) ** 2))


def mae(estimated: Sequence[float], truth: Sequence[float]) -> float:
    """Mean absolute error."""
    est, true = _pair(estimated, truth)
    return float(np.mean(np.abs(est - true)))


def rmse(estimated: Sequence[float], truth: Sequence[float]) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(estimated, truth)))


def mean_error(estimated: Sequence[float], truth: Sequence[float]) -> float:
    """Signed mean deviation (Lemma III.1's ``MD``)."""
    est, true = _pair(estimated, truth)
    return float(np.mean(est) - np.mean(true))
