"""Vector- and distribution-distance metrics (Section VI-A-2).

The paper evaluates stream publication with **cosine distance**, and
crowd-level mean distributions with the **Wasserstein distance** in its
L1-of-empirical-CDF form ``W(F, G) = sum_i |F_i - G_i|``.  Jensen-Shannon
divergence is included because several figure axes are labelled "JSD".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import ensure_positive_int, ensure_stream

__all__ = [
    "cosine_distance",
    "wasserstein_distance",
    "jensen_shannon_divergence",
    "empirical_cdf",
]


def cosine_distance(u: Sequence[float], v: Sequence[float]) -> float:
    """``1 - <u, v> / (|u| |v|)``; 0 for identical directions.

    Raises:
        ValueError: if either vector is all-zero (direction undefined).
    """
    a = ensure_stream(u, "u")
    b = ensure_stream(v, "v")
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    norm_a = float(np.linalg.norm(a))
    norm_b = float(np.linalg.norm(b))
    if norm_a == 0.0 or norm_b == 0.0:
        raise ValueError("cosine distance is undefined for zero vectors")
    similarity = float(np.dot(a, b)) / (norm_a * norm_b)
    return 1.0 - similarity


def empirical_cdf(samples: Sequence[float], grid: np.ndarray) -> np.ndarray:
    """Empirical CDF of ``samples`` evaluated on ``grid``."""
    arr = ensure_stream(samples, "samples")
    return np.searchsorted(np.sort(arr), grid, side="right") / arr.size


def wasserstein_distance(
    samples_a: Sequence[float],
    samples_b: Sequence[float],
    n_grid: int = 200,
) -> float:
    """Paper's Wasserstein form: ``sum_i |F_i - G_i|`` over a shared grid.

    Both empirical CDFs are evaluated on ``n_grid`` evenly spaced points
    spanning the pooled sample range.  (This is the paper's discretized
    Earth-Mover's distance, not the normalized integral form; comparisons
    between algorithms are unaffected by the constant grid factor.)
    """
    a = ensure_stream(samples_a, "samples_a")
    b = ensure_stream(samples_b, "samples_b")
    n_grid = ensure_positive_int(n_grid, "n_grid")
    lo = min(a.min(), b.min())
    hi = max(a.max(), b.max())
    if lo == hi:
        return 0.0
    grid = np.linspace(lo, hi, n_grid)
    return float(np.abs(empirical_cdf(a, grid) - empirical_cdf(b, grid)).sum())


def jensen_shannon_divergence(
    samples_a: Sequence[float],
    samples_b: Sequence[float],
    n_bins: int = 32,
) -> float:
    """JSD between histogram densities of two sample sets (base-2 logs)."""
    a = ensure_stream(samples_a, "samples_a")
    b = ensure_stream(samples_b, "samples_b")
    n_bins = ensure_positive_int(n_bins, "n_bins")
    lo = min(a.min(), b.min())
    hi = max(a.max(), b.max())
    if lo == hi:
        return 0.0
    edges = np.linspace(lo, hi, n_bins + 1)
    p, _ = np.histogram(a, bins=edges, density=False)
    q, _ = np.histogram(b, bins=edges, density=False)
    p = p / p.sum()
    q = q / q.sum()

    m = (p + q) / 2.0

    def _kl(x: np.ndarray, y: np.ndarray) -> float:
        mask = x > 0
        return float(np.sum(x[mask] * np.log2(x[mask] / y[mask])))

    return 0.5 * _kl(p, m) + 0.5 * _kl(q, m)
