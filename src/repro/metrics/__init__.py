"""Utility metrics used by the paper's evaluation."""

from .distance import (
    cosine_distance,
    empirical_cdf,
    jensen_shannon_divergence,
    wasserstein_distance,
)
from .errors import mae, mean_error, mse, rmse

__all__ = [
    "mse",
    "mae",
    "rmse",
    "mean_error",
    "cosine_distance",
    "wasserstein_distance",
    "jensen_shannon_divergence",
    "empirical_cdf",
]
