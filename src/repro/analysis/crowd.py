"""Crowd-level statistics — Section IV-C "Crowd-level statistics", Fig. 8.

Given many users' streams, the collector estimates each user's subsequence
mean and studies the *distribution* of those means across the population.
Theorem 5 (via the DKW inequality) guarantees that per-user estimation
error ``beta`` translates into at most ``beta`` extra sup-distance between
the empirical and true mean distributions — so better individual estimates
give a better crowd-level picture, which Fig. 8 measures with the
Wasserstein distance.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from .._validation import ensure_positive_int, ensure_rng
from ..core.base import StreamPerturber
from ..metrics.distance import wasserstein_distance

__all__ = [
    "crowd_mean_estimates",
    "crowd_mean_distribution_distance",
    "dkw_sample_bound",
]

#: factory signature: () -> StreamPerturber (fresh perturber per user)
PerturberFactory = Callable[[], StreamPerturber]


def crowd_mean_estimates(
    streams: np.ndarray,
    factory: PerturberFactory,
    rng: Optional[np.random.Generator] = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-user (estimated, true) subsequence means.

    Args:
        streams: ``(n_users, length)`` matrix of user subsequences in
            ``[0, 1]``.
        factory: builds a fresh perturber per user (each user perturbs
            locally and independently).
        rng: shared randomness source.

    Returns:
        ``(estimated_means, true_means)`` arrays of length ``n_users``.
    """
    matrix = np.asarray(streams, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"streams must be a (users, length) matrix, got {matrix.shape}")
    rng = ensure_rng(rng)
    estimated = np.empty(matrix.shape[0])
    for i in range(matrix.shape[0]):
        result = factory().perturb_stream(matrix[i], rng)
        estimated[i] = result.mean_estimate()
    return estimated, matrix.mean(axis=1)


def crowd_mean_distribution_distance(
    streams: np.ndarray,
    factory: PerturberFactory,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Wasserstein distance between estimated and true mean distributions."""
    estimated, true = crowd_mean_estimates(streams, factory, rng)
    return wasserstein_distance(estimated, true)


def dkw_sample_bound(eta: float, beta: float, delta: float) -> int:
    """Theorem 5's sample-size condition ``N >= ln(2/delta) / (2 (eta-beta)^2)``.

    Args:
        eta: target sup-distance between empirical and true CDFs.
        beta: per-user estimation error bound (must satisfy ``beta < eta``).
        delta: failure probability.

    Returns:
        The smallest integer ``N`` satisfying the bound.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if beta < 0.0:
        raise ValueError(f"beta must be non-negative, got {beta}")
    if eta <= beta:
        raise ValueError(f"eta ({eta}) must exceed beta ({beta})")
    bound = math.log(2.0 / delta) / (2.0 * (eta - beta) ** 2)
    return ensure_positive_int(max(int(math.ceil(bound)), 1), "N")
