"""Trend analysis on published streams.

Section III-A: the collector "releases the aggregated values, e.g., mean
or trends".  This module supplies the trend side: windowed linear-trend
estimation, direction classification, and CUSUM change-point detection —
all pure post-processing of published (already-private) streams, hence
privacy-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .._validation import ensure_positive_int, ensure_stream

__all__ = [
    "linear_trend",
    "rolling_trend",
    "classify_trend",
    "TrendSegment",
    "detect_change_points",
    "segment_trends",
]


def linear_trend(values: Sequence[float]) -> "tuple[float, float]":
    """Least-squares slope and intercept over slot indices.

    Returns:
        ``(slope, intercept)`` of the fit ``value ~ slope * t + intercept``.
    """
    arr = ensure_stream(values)
    if arr.size == 1:
        return 0.0, float(arr[0])
    t = np.arange(arr.size, dtype=float)
    slope, intercept = np.polyfit(t, arr, 1)
    return float(slope), float(intercept)


def rolling_trend(values: Sequence[float], window: int) -> np.ndarray:
    """Slope of the trailing ``window``-slot fit at every position.

    Positions with fewer than two observations get slope 0.
    """
    arr = ensure_stream(values)
    window = ensure_positive_int(window, "window")
    slopes = np.zeros(arr.size)
    for t in range(1, arr.size):
        lo = max(0, t - window + 1)
        segment = arr[lo : t + 1]
        slopes[t] = linear_trend(segment)[0]
    return slopes


def classify_trend(values: Sequence[float], threshold: float = 1e-3) -> str:
    """Classify the overall trend as ``"rising"``/``"falling"``/``"flat"``.

    ``threshold`` is the absolute slope (per slot) below which the stream
    counts as flat.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    slope, _ = linear_trend(values)
    if slope > threshold:
        return "rising"
    if slope < -threshold:
        return "falling"
    return "flat"


@dataclass(frozen=True)
class TrendSegment:
    """A maximal span with one trend direction between change points."""

    start: int
    end: int  # inclusive
    direction: str
    slope: float

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(f"empty segment [{self.start}, {self.end}]")


def detect_change_points(
    values: Sequence[float],
    threshold: float = 0.5,
    drift: float = 0.0,
) -> "list[int]":
    """Two-sided CUSUM change-point detection.

    Accumulates deviations from the running post-change mean; a change is
    declared when either cumulative sum exceeds ``threshold``, after which
    the detector resets.  ``drift`` desensitizes against slow wander.

    Returns:
        Sorted change-point indices (the first slot of each new regime).
    """
    arr = ensure_stream(values)
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    if drift < 0:
        raise ValueError(f"drift must be non-negative, got {drift}")

    change_points: List[int] = []
    reference = arr[0]
    pos = neg = 0.0
    count = 1
    for t in range(1, arr.size):
        deviation = arr[t] - reference
        pos = max(0.0, pos + deviation - drift)
        neg = max(0.0, neg - deviation - drift)
        if pos > threshold or neg > threshold:
            change_points.append(t)
            reference = arr[t]
            pos = neg = 0.0
            count = 1
        else:
            # Track the running mean of the current regime.
            count += 1
            reference += (arr[t] - reference) / count
    return change_points


def segment_trends(
    values: Sequence[float],
    threshold: float = 0.5,
    drift: float = 0.0,
    flat_slope: float = 1e-3,
) -> "list[TrendSegment]":
    """Split the stream at change points and classify each segment."""
    arr = ensure_stream(values)
    points = detect_change_points(arr, threshold, drift)
    bounds = [0] + points + [arr.size]
    segments: List[TrendSegment] = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi <= lo:
            continue
        piece = arr[lo:hi]
        slope, _ = linear_trend(piece)
        segments.append(
            TrendSegment(
                start=lo,
                end=hi - 1,
                direction=classify_trend(piece, flat_slope),
                slope=slope,
            )
        )
    return segments
