"""Collector-side aggregation: subsequence statistics from perturbed streams.

Section III-B defines the collector's two tasks over a subsequence
``X_(i,j)``: **stream data publication** (release the reconstructed
stream) and **statistical analysis** (e.g. the subsequence mean).  These
helpers operate on the result objects produced by the stream perturbers.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from .._validation import ensure_stream
from ..core.base import PerturbationResult
from ..core.sampling import SamplingResult

__all__ = [
    "subsequence",
    "subsequence_mean",
    "estimate_mean",
    "estimate_published_stream",
]

AnyResult = Union[PerturbationResult, SamplingResult]


def subsequence(values: Sequence[float], start: int, end: int) -> np.ndarray:
    """The paper's ``X_(i,j)`` — inclusive slice ``[start, end]``."""
    arr = ensure_stream(values)
    if not 0 <= start <= end < arr.size:
        raise ValueError(
            f"invalid subsequence [{start}, {end}] for length {arr.size}"
        )
    return arr[start : end + 1]


def subsequence_mean(values: Sequence[float], start: int, end: int) -> float:
    """Ground-truth subsequence mean ``M_(i,j)``."""
    return float(subsequence(values, start, end).mean())


def estimate_mean(result: AnyResult) -> float:
    """Collector-side subsequence mean estimate from a perturbation result."""
    return result.mean_estimate()


def estimate_published_stream(result: AnyResult) -> np.ndarray:
    """The stream the collector publishes (post-processing included)."""
    return result.published.copy()
