"""Constant-time subsequence queries over published streams and scan stores.

The paper's collector answers statistics over arbitrary subsequences
``X_(i,j)``.  For interactive workloads (dashboards, range scans) a
per-query ``mean`` over a slice is O(length); :class:`SubsequenceIndex`
precomputes prefix sums once and answers mean/variance/count queries over
any inclusive range in O(1), plus batched queries.

The second half of the module queries :mod:`repro.scan` result stores:
:func:`load_scan_table` reads a store's consolidated columnar table into
a :class:`ScanTable` (pure-numpy columns with ``filter``/``pivot``), and
:func:`metric_vs_epsilon` answers the canonical evaluation question —
"how does the error of each algorithm move with epsilon, per scenario?"
— in one call, however many cells the grid held.

Everything here is post-processing of already-published values, so it is
privacy-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

import numpy as np

from .._validation import ensure_stream

__all__ = [
    "SubsequenceIndex",
    "RangeStatistics",
    "ScanTable",
    "load_scan_table",
    "metric_vs_epsilon",
]


@dataclass(frozen=True)
class RangeStatistics:
    """Summary statistics of one inclusive range query."""

    start: int
    end: int
    count: int
    mean: float
    variance: float

    @property
    def std(self) -> float:
        return float(np.sqrt(max(self.variance, 0.0)))


class SubsequenceIndex:
    """Prefix-sum index over a published stream.

    Example:
        >>> index = SubsequenceIndex([0.1, 0.2, 0.3, 0.4])
        >>> index.mean(1, 2)
        0.25
    """

    def __init__(self, values: Sequence[float]) -> None:
        arr = ensure_stream(values)
        self._n = arr.size
        self._prefix = np.concatenate([[0.0], np.cumsum(arr)])
        self._prefix_sq = np.concatenate([[0.0], np.cumsum(arr**2)])

    def __len__(self) -> int:
        return self._n

    def _check_range(self, start: int, end: int) -> None:
        if not 0 <= start <= end < self._n:
            raise ValueError(
                f"invalid range [{start}, {end}] for stream of length {self._n}"
            )

    def range_sum(self, start: int, end: int) -> float:
        """Sum over the inclusive range ``[start, end]``."""
        self._check_range(start, end)
        return float(self._prefix[end + 1] - self._prefix[start])

    def mean(self, start: int, end: int) -> float:
        """Mean over the inclusive range (the paper's ``M_(i,j)``)."""
        self._check_range(start, end)
        return self.range_sum(start, end) / (end - start + 1)

    def variance(self, start: int, end: int) -> float:
        """Population variance over the inclusive range."""
        self._check_range(start, end)
        count = end - start + 1
        mean = self.mean(start, end)
        sum_sq = float(self._prefix_sq[end + 1] - self._prefix_sq[start])
        return max(sum_sq / count - mean**2, 0.0)

    def statistics(self, start: int, end: int) -> RangeStatistics:
        """All range statistics in one call."""
        self._check_range(start, end)
        return RangeStatistics(
            start=start,
            end=end,
            count=end - start + 1,
            mean=self.mean(start, end),
            variance=self.variance(start, end),
        )

    def batch_means(self, ranges: Sequence["tuple[int, int]"]) -> np.ndarray:
        """Vectorized means for many inclusive ranges."""
        if not len(ranges):
            return np.empty(0)
        arr = np.asarray(ranges, dtype=int)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("ranges must be a sequence of (start, end) pairs")
        starts, ends = arr[:, 0], arr[:, 1]
        if (starts < 0).any() or (ends >= self._n).any() or (starts > ends).any():
            raise ValueError("invalid range in batch")
        sums = self._prefix[ends + 1] - self._prefix[starts]
        return sums / (ends - starts + 1)

    def sliding_means(self, window: int) -> np.ndarray:
        """Means of every full window of the given length."""
        if not 1 <= window <= self._n:
            raise ValueError(f"window must be in [1, {self._n}], got {window}")
        starts = np.arange(self._n - window + 1)
        return self.batch_means(np.column_stack([starts, starts + window - 1]))


# -- scan-store queries ----------------------------------------------------


@dataclass(frozen=True)
class ScanTable:
    """A scan store's consolidated table as aligned numpy columns.

    All columns share one row order (ascending cell index).  ``filter``
    narrows rows by equality on any column, ``pivot`` reshapes one
    metric over a (row axis, column axis) pair — the building blocks the
    one-call helpers below compose.
    """

    columns: Dict[str, np.ndarray]

    def __len__(self) -> int:
        return int(self.columns["index"].size)

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            known = ", ".join(sorted(self.columns))
            raise KeyError(
                f"unknown scan column {name!r} (known: {known})"
            ) from None

    def filter(self, **criteria) -> "ScanTable":
        """Rows matching every ``column=value`` criterion.

        A value may be a scalar or a list/tuple of accepted alternatives.
        """
        mask = np.ones(len(self), dtype=bool)
        for name, wanted in criteria.items():
            column = self[name]
            options = wanted if isinstance(wanted, (list, tuple)) else (wanted,)
            hit = np.zeros(len(self), dtype=bool)
            for option in options:
                hit |= column == np.asarray(option, dtype=column.dtype)
            mask &= hit
        return ScanTable(
            columns={name: values[mask] for name, values in self.columns.items()}
        )

    def unique(self, name: str) -> "list":
        """Sorted unique values of one column."""
        return sorted(np.unique(self[name]).tolist())

    def pivot(
        self, metric: str, rows: str, cols: str, reduce: str = "mean"
    ) -> "tuple[list, list, np.ndarray]":
        """``(row_labels, col_labels, matrix)`` of a metric.

        Cells holding several scan rows are reduced by ``reduce``
        (``"mean"``, ``"min"``, ``"max"``); empty cells are NaN.
        """
        reducer = {"mean": np.mean, "min": np.min, "max": np.max}.get(reduce)
        if reducer is None:
            raise ValueError(
                f"reduce must be 'mean', 'min' or 'max', got {reduce!r}"
            )
        row_labels = self.unique(rows)
        col_labels = self.unique(cols)
        matrix = np.full((len(row_labels), len(col_labels)), np.nan)
        values = self[metric]
        row_col, col_col = self[rows], self[cols]
        for i, row in enumerate(row_labels):
            for j, col in enumerate(col_labels):
                hit = values[(row_col == row) & (col_col == col)]
                if hit.size:
                    matrix[i, j] = float(reducer(hit))
        return row_labels, col_labels, matrix


def load_scan_table(store: Union[str, "object"]) -> ScanTable:
    """Load a scan store's columnar table (path or open ``ScanStore``).

    Reads the finalized ``table.npz`` when present; a store that was
    interrupted before finalization is consolidated from its manifest on
    the fly, so partial scans are queryable too.
    """
    import os

    from ..scan.store import ScanStore

    if isinstance(store, ScanStore):
        return ScanTable(columns=store.table())
    path = str(store)
    table_path = os.path.join(path, "table.npz")
    opened = ScanStore(path)  # validates the manifest either way
    if opened.finalized and os.path.exists(table_path):
        with np.load(table_path) as data:
            return ScanTable(columns={name: data[name] for name in data.files})
    return ScanTable(columns=opened.table())


def metric_vs_epsilon(
    store: Union[str, "object", ScanTable],
    metric: str = "mse",
    scenario: Optional[str] = None,
    n_users: Optional[int] = None,
    engine: Optional[str] = None,
    **criteria,
) -> Dict[str, Dict[str, "tuple[np.ndarray, np.ndarray]"]]:
    """Error-vs-epsilon curves for every algorithm, split by scenario.

    The one-call answer to "MAE vs epsilon across all scenarios at 1M
    users"::

        curves = metric_vs_epsilon("results/", metric="mae", n_users=1_000_000)
        epsilons, maes = curves["diurnal"]["capp"]

    Args:
        store: store directory path, open ``ScanStore``, or a
            pre-filtered :class:`ScanTable`.
        metric: any scalar column (``mse``, ``mae``,
            ``max_window_spend``, throughput columns, ...).
        scenario: restrict to one scenario (default: all, keyed in the
            result).
        n_users, engine: optional equality filters on those columns.
        **criteria: further ``column=value`` filters (e.g. ``w=10``).

    Returns:
        ``{scenario: {algorithm: (epsilons, values)}}`` with both arrays
        sorted by epsilon; cells sharing an epsilon are averaged.
    """
    table = store if isinstance(store, ScanTable) else load_scan_table(store)
    if scenario is not None:
        criteria["scenario"] = scenario
    if n_users is not None:
        criteria["n_users"] = int(n_users)
    if engine is not None:
        criteria["engine"] = engine
    table = table.filter(**criteria)
    curves: Dict[str, Dict[str, "tuple[np.ndarray, np.ndarray]"]] = {}
    for name in table.unique("scenario"):
        per_scenario = table.filter(scenario=name)
        curves[name] = {}
        for algorithm in per_scenario.unique("algorithm"):
            cells = per_scenario.filter(algorithm=algorithm)
            epsilons, values = cells["epsilon"], cells[metric]
            grid = np.unique(epsilons)
            averaged = np.array(
                [float(np.mean(values[epsilons == e])) for e in grid]
            )
            curves[name][algorithm] = (grid, averaged)
    return curves
