"""Constant-time subsequence queries over published streams.

The paper's collector answers statistics over arbitrary subsequences
``X_(i,j)``.  For interactive workloads (dashboards, range scans) a
per-query ``mean`` over a slice is O(length); :class:`SubsequenceIndex`
precomputes prefix sums once and answers mean/variance/count queries over
any inclusive range in O(1), plus batched queries.

Everything here is post-processing of already-published values, so it is
privacy-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import ensure_stream

__all__ = ["SubsequenceIndex", "RangeStatistics"]


@dataclass(frozen=True)
class RangeStatistics:
    """Summary statistics of one inclusive range query."""

    start: int
    end: int
    count: int
    mean: float
    variance: float

    @property
    def std(self) -> float:
        return float(np.sqrt(max(self.variance, 0.0)))


class SubsequenceIndex:
    """Prefix-sum index over a published stream.

    Example:
        >>> index = SubsequenceIndex([0.1, 0.2, 0.3, 0.4])
        >>> index.mean(1, 2)
        0.25
    """

    def __init__(self, values: Sequence[float]) -> None:
        arr = ensure_stream(values)
        self._n = arr.size
        self._prefix = np.concatenate([[0.0], np.cumsum(arr)])
        self._prefix_sq = np.concatenate([[0.0], np.cumsum(arr**2)])

    def __len__(self) -> int:
        return self._n

    def _check_range(self, start: int, end: int) -> None:
        if not 0 <= start <= end < self._n:
            raise ValueError(
                f"invalid range [{start}, {end}] for stream of length {self._n}"
            )

    def range_sum(self, start: int, end: int) -> float:
        """Sum over the inclusive range ``[start, end]``."""
        self._check_range(start, end)
        return float(self._prefix[end + 1] - self._prefix[start])

    def mean(self, start: int, end: int) -> float:
        """Mean over the inclusive range (the paper's ``M_(i,j)``)."""
        self._check_range(start, end)
        return self.range_sum(start, end) / (end - start + 1)

    def variance(self, start: int, end: int) -> float:
        """Population variance over the inclusive range."""
        self._check_range(start, end)
        count = end - start + 1
        mean = self.mean(start, end)
        sum_sq = float(self._prefix_sq[end + 1] - self._prefix_sq[start])
        return max(sum_sq / count - mean**2, 0.0)

    def statistics(self, start: int, end: int) -> RangeStatistics:
        """All range statistics in one call."""
        self._check_range(start, end)
        return RangeStatistics(
            start=start,
            end=end,
            count=end - start + 1,
            mean=self.mean(start, end),
            variance=self.variance(start, end),
        )

    def batch_means(self, ranges: Sequence["tuple[int, int]"]) -> np.ndarray:
        """Vectorized means for many inclusive ranges."""
        if not len(ranges):
            return np.empty(0)
        arr = np.asarray(ranges, dtype=int)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("ranges must be a sequence of (start, end) pairs")
        starts, ends = arr[:, 0], arr[:, 1]
        if (starts < 0).any() or (ends >= self._n).any() or (starts > ends).any():
            raise ValueError("invalid range in batch")
        sums = self._prefix[ends + 1] - self._prefix[starts]
        return sums / (ends - starts + 1)

    def sliding_means(self, window: int) -> np.ndarray:
        """Means of every full window of the given length."""
        if not 1 <= window <= self._n:
            raise ValueError(f"window must be in [1, {self._n}], got {window}")
        starts = np.arange(self._n - window + 1)
        return self.batch_means(np.column_stack([starts, starts + window - 1]))
