"""Continuous (standing) queries over an incoming published stream.

A collector rarely asks one-off questions; it keeps dashboards alive.
:class:`StreamingQueryEngine` maintains a set of registered standing
queries — rolling means, rolling extrema, trend direction, threshold
alerts — and updates all of them in O(#queries) per arriving report with
O(window) memory per query.

All inputs are already-published (ε-sanitized) values, so everything
here is privacy-free post-processing.

Non-finite inputs are rejected everywhere, not just at the engine's
``push`` boundary: a single NaN folded into :class:`RollingMean`'s
running sum would poison every later answer (NaN never leaves a running
sum, even after the offending value slides out of the window), and a
NaN-poisoned mean silently disables :class:`ThresholdAlert` (every
comparison with NaN is False, so the alert can neither fire nor clear).
Each query therefore validates in ``update`` as well, so state can never
be corrupted through direct query access either.
"""

from __future__ import annotations

import abc
import math
from collections import deque
from typing import Deque, Dict, Optional

import numpy as np

from .._validation import ensure_positive_int
from .trends import linear_trend

__all__ = [
    "StreamingQuery",
    "RollingMean",
    "RollingExtrema",
    "RollingTrend",
    "ThresholdAlert",
    "StreamingQueryEngine",
    "standard_dashboard",
]


def _ensure_finite(value: float) -> float:
    """Coerce one published value to float, rejecting NaN/inf."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"published values must be finite, got {value}")
    return value


class StreamingQuery(abc.ABC):
    """One standing query: consumes values, exposes a current answer.

    ``update`` implementations must reject non-finite values (use
    :func:`_ensure_finite`) — see the module docstring for why a single
    NaN would otherwise corrupt rolling state permanently.
    """

    @abc.abstractmethod
    def update(self, value: float) -> None:
        """Consume the next published value."""

    @abc.abstractmethod
    def answer(self) -> object:
        """The query's current answer (None while warming up)."""

    def reset(self) -> None:  # pragma: no cover - trivial default
        """Forget all state (default: re-init via __init__ contract)."""
        raise NotImplementedError


class RollingMean(StreamingQuery):
    """Mean of the last ``window`` values (running sum, O(1) update)."""

    def __init__(self, window: int) -> None:
        self.window = ensure_positive_int(window, "window")
        self._buffer: Deque[float] = deque(maxlen=self.window)
        self._sum = 0.0

    def update(self, value: float) -> None:
        value = _ensure_finite(value)
        if len(self._buffer) == self.window:
            self._sum -= self._buffer[0]
        self._buffer.append(value)
        self._sum += value

    def answer(self) -> Optional[float]:
        if not self._buffer:
            return None
        return self._sum / len(self._buffer)

    def reset(self) -> None:
        self._buffer.clear()
        self._sum = 0.0


class RollingExtrema(StreamingQuery):
    """(min, max) of the last ``window`` values."""

    def __init__(self, window: int) -> None:
        self.window = ensure_positive_int(window, "window")
        self._buffer: Deque[float] = deque(maxlen=self.window)

    def update(self, value: float) -> None:
        self._buffer.append(_ensure_finite(value))

    def answer(self) -> Optional["tuple[float, float]"]:
        if not self._buffer:
            return None
        return (min(self._buffer), max(self._buffer))

    def reset(self) -> None:
        self._buffer.clear()


class RollingTrend(StreamingQuery):
    """Least-squares slope over the last ``window`` values."""

    def __init__(self, window: int) -> None:
        self.window = ensure_positive_int(window, "window")
        if self.window < 2:
            raise ValueError("trend window must be at least 2")
        self._buffer: Deque[float] = deque(maxlen=self.window)

    def update(self, value: float) -> None:
        self._buffer.append(_ensure_finite(value))

    def answer(self) -> Optional[float]:
        if len(self._buffer) < 2:
            return None
        slope, _ = linear_trend(np.array(self._buffer))
        return slope

    def reset(self) -> None:
        self._buffer.clear()


class ThresholdAlert(StreamingQuery):
    """Fires when the rolling mean crosses a threshold.

    ``answer()`` returns the current alert state (True/False); the
    ``fired_count`` attribute counts state flips into the alert state.
    """

    def __init__(self, window: int, threshold: float, above: bool = True) -> None:
        self._mean = RollingMean(window)
        self.threshold = float(threshold)
        self.above = bool(above)
        self.fired_count = 0
        self._active = False

    def update(self, value: float) -> None:
        self._mean.update(value)
        mean = self._mean.answer()
        if mean is None:
            return
        triggered = mean > self.threshold if self.above else mean < self.threshold
        if triggered and not self._active:
            self.fired_count += 1
        self._active = triggered

    def answer(self) -> bool:
        return self._active

    def reset(self) -> None:
        self._mean.reset()
        self.fired_count = 0
        self._active = False


class StreamingQueryEngine:
    """Routes each arriving published value to every registered query.

    Example:
        >>> engine = StreamingQueryEngine()
        >>> engine.register("hourly_mean", RollingMean(window=12))
        >>> engine.register("overload", ThresholdAlert(12, threshold=0.9))
        >>> for report in published_reports:       # doctest: +SKIP
        ...     answers = engine.push(report)
    """

    def __init__(self) -> None:
        self._queries: Dict[str, StreamingQuery] = {}
        self._n_seen = 0

    def register(self, name: str, query: StreamingQuery) -> None:
        """Add a standing query under a unique name."""
        if name in self._queries:
            raise ValueError(f"query {name!r} already registered")
        if not isinstance(query, StreamingQuery):
            raise TypeError("query must be a StreamingQuery")
        self._queries[name] = query

    def unregister(self, name: str) -> None:
        """Remove a standing query."""
        if name not in self._queries:
            raise KeyError(f"no query named {name!r}")
        del self._queries[name]

    @property
    def names(self) -> "list[str]":
        return sorted(self._queries)

    def query(self, name: str) -> StreamingQuery:
        """Access a registered query object (e.g. an alert's counters)."""
        if name not in self._queries:
            raise KeyError(f"no query named {name!r}")
        return self._queries[name]

    @property
    def values_seen(self) -> int:
        return self._n_seen

    def push(self, value: float) -> Dict[str, object]:
        """Feed one published value to all queries; return all answers."""
        value = float(value)
        if not np.isfinite(value):
            raise ValueError("pushed value must be finite")
        self._n_seen += 1
        for query in self._queries.values():
            query.update(value)
        return self.answers()

    def answers(self) -> Dict[str, object]:
        """Current answers of every registered query."""
        return {name: query.answer() for name, query in self._queries.items()}

    def reset(self) -> None:
        """Reset every query and the value counter."""
        for query in self._queries.values():
            query.reset()
        self._n_seen = 0


def standard_dashboard(
    window: int = 5,
    alert_threshold: float = 0.52,
    alert_above: bool = True,
) -> StreamingQueryEngine:
    """The canonical serving dashboard: mean, extrema, trend, alert.

    One engine with the four standing queries every live surface (the
    live study, the serve-replay CLI, the dashboard example) registers:
    ``rolling_mean``, ``extrema``, ``trend`` (window at least 2 — a
    1-slot trend can never answer), and ``alert`` on the rolling mean.
    The 0.52 default threshold sits just above the resting raw-report
    mean: per-slot SW reports shrink the signal toward 0.5 at strong
    per-report privacy, so alerting at the *true* burst level would
    never fire.
    """
    engine = StreamingQueryEngine()
    engine.register("rolling_mean", RollingMean(window))
    engine.register("extrema", RollingExtrema(window))
    engine.register("trend", RollingTrend(max(window, 2)))
    engine.register(
        "alert", ThresholdAlert(window, alert_threshold, above=alert_above)
    )
    return engine
