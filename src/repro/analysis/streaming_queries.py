"""Continuous (standing) queries over an incoming published stream.

A collector rarely asks one-off questions; it keeps dashboards alive.
:class:`StreamingQueryEngine` maintains a set of registered standing
queries — rolling means, rolling extrema, trend direction, threshold
alerts — and updates all of them in O(#queries) per arriving report with
O(window) memory per query.

All inputs are already-published (ε-sanitized) values, so everything
here is privacy-free post-processing.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Deque, Dict, Optional

import numpy as np

from .._validation import ensure_positive_int
from .trends import linear_trend

__all__ = [
    "StreamingQuery",
    "RollingMean",
    "RollingExtrema",
    "RollingTrend",
    "ThresholdAlert",
    "StreamingQueryEngine",
]


class StreamingQuery(abc.ABC):
    """One standing query: consumes values, exposes a current answer."""

    @abc.abstractmethod
    def update(self, value: float) -> None:
        """Consume the next published value."""

    @abc.abstractmethod
    def answer(self) -> object:
        """The query's current answer (None while warming up)."""

    def reset(self) -> None:  # pragma: no cover - trivial default
        """Forget all state (default: re-init via __init__ contract)."""
        raise NotImplementedError


class RollingMean(StreamingQuery):
    """Mean of the last ``window`` values (running sum, O(1) update)."""

    def __init__(self, window: int) -> None:
        self.window = ensure_positive_int(window, "window")
        self._buffer: Deque[float] = deque(maxlen=self.window)
        self._sum = 0.0

    def update(self, value: float) -> None:
        value = float(value)
        if len(self._buffer) == self.window:
            self._sum -= self._buffer[0]
        self._buffer.append(value)
        self._sum += value

    def answer(self) -> Optional[float]:
        if not self._buffer:
            return None
        return self._sum / len(self._buffer)

    def reset(self) -> None:
        self._buffer.clear()
        self._sum = 0.0


class RollingExtrema(StreamingQuery):
    """(min, max) of the last ``window`` values."""

    def __init__(self, window: int) -> None:
        self.window = ensure_positive_int(window, "window")
        self._buffer: Deque[float] = deque(maxlen=self.window)

    def update(self, value: float) -> None:
        self._buffer.append(float(value))

    def answer(self) -> Optional["tuple[float, float]"]:
        if not self._buffer:
            return None
        return (min(self._buffer), max(self._buffer))

    def reset(self) -> None:
        self._buffer.clear()


class RollingTrend(StreamingQuery):
    """Least-squares slope over the last ``window`` values."""

    def __init__(self, window: int) -> None:
        self.window = ensure_positive_int(window, "window")
        if self.window < 2:
            raise ValueError("trend window must be at least 2")
        self._buffer: Deque[float] = deque(maxlen=self.window)

    def update(self, value: float) -> None:
        self._buffer.append(float(value))

    def answer(self) -> Optional[float]:
        if len(self._buffer) < 2:
            return None
        slope, _ = linear_trend(np.array(self._buffer))
        return slope

    def reset(self) -> None:
        self._buffer.clear()


class ThresholdAlert(StreamingQuery):
    """Fires when the rolling mean crosses a threshold.

    ``answer()`` returns the current alert state (True/False); the
    ``fired_count`` attribute counts state flips into the alert state.
    """

    def __init__(self, window: int, threshold: float, above: bool = True) -> None:
        self._mean = RollingMean(window)
        self.threshold = float(threshold)
        self.above = bool(above)
        self.fired_count = 0
        self._active = False

    def update(self, value: float) -> None:
        self._mean.update(value)
        mean = self._mean.answer()
        if mean is None:
            return
        triggered = mean > self.threshold if self.above else mean < self.threshold
        if triggered and not self._active:
            self.fired_count += 1
        self._active = triggered

    def answer(self) -> bool:
        return self._active

    def reset(self) -> None:
        self._mean.reset()
        self.fired_count = 0
        self._active = False


class StreamingQueryEngine:
    """Routes each arriving published value to every registered query.

    Example:
        >>> engine = StreamingQueryEngine()
        >>> engine.register("hourly_mean", RollingMean(window=12))
        >>> engine.register("overload", ThresholdAlert(12, threshold=0.9))
        >>> for report in published_reports:       # doctest: +SKIP
        ...     answers = engine.push(report)
    """

    def __init__(self) -> None:
        self._queries: Dict[str, StreamingQuery] = {}
        self._n_seen = 0

    def register(self, name: str, query: StreamingQuery) -> None:
        """Add a standing query under a unique name."""
        if name in self._queries:
            raise ValueError(f"query {name!r} already registered")
        if not isinstance(query, StreamingQuery):
            raise TypeError("query must be a StreamingQuery")
        self._queries[name] = query

    def unregister(self, name: str) -> None:
        """Remove a standing query."""
        if name not in self._queries:
            raise KeyError(f"no query named {name!r}")
        del self._queries[name]

    @property
    def names(self) -> "list[str]":
        return sorted(self._queries)

    def query(self, name: str) -> StreamingQuery:
        """Access a registered query object (e.g. an alert's counters)."""
        if name not in self._queries:
            raise KeyError(f"no query named {name!r}")
        return self._queries[name]

    @property
    def values_seen(self) -> int:
        return self._n_seen

    def push(self, value: float) -> Dict[str, object]:
        """Feed one published value to all queries; return all answers."""
        value = float(value)
        if not np.isfinite(value):
            raise ValueError("pushed value must be finite")
        self._n_seen += 1
        for query in self._queries.values():
            query.update(value)
        return self.answers()

    def answers(self) -> Dict[str, object]:
        """Current answers of every registered query."""
        return {name: query.answer() for name, query in self._queries.items()}

    def reset(self) -> None:
        """Reset every query and the value counter."""
        for query in self._queries.values():
            query.reset()
        self._n_seen = 0
