"""Collector-side analysis: subsequence statistics and crowd-level views."""

from .aggregation import (
    estimate_mean,
    estimate_published_stream,
    subsequence,
    subsequence_mean,
)
from .crowd import (
    crowd_mean_distribution_distance,
    crowd_mean_estimates,
    dkw_sample_bound,
)
from .queries import (
    RangeStatistics,
    ScanTable,
    SubsequenceIndex,
    load_scan_table,
    metric_vs_epsilon,
)
from .streaming_queries import (
    RollingExtrema,
    RollingMean,
    RollingTrend,
    StreamingQuery,
    StreamingQueryEngine,
    ThresholdAlert,
    standard_dashboard,
)
from .trends import (
    TrendSegment,
    classify_trend,
    detect_change_points,
    linear_trend,
    rolling_trend,
    segment_trends,
)

__all__ = [
    "SubsequenceIndex",
    "RangeStatistics",
    "ScanTable",
    "load_scan_table",
    "metric_vs_epsilon",
    "StreamingQuery",
    "StreamingQueryEngine",
    "RollingMean",
    "RollingExtrema",
    "RollingTrend",
    "ThresholdAlert",
    "standard_dashboard",
    "linear_trend",
    "rolling_trend",
    "classify_trend",
    "TrendSegment",
    "detect_change_points",
    "segment_trends",
    "subsequence",
    "subsequence_mean",
    "estimate_mean",
    "estimate_published_stream",
    "crowd_mean_estimates",
    "crowd_mean_distribution_distance",
    "dkw_sample_bound",
]
