"""Empirical privacy auditing: Monte Carlo verification of w-event LDP.

The paper proves w-event privacy for IPP/APP/CAPP analytically (Theorems
3 and 4).  This module provides the *executable* counterpart: a black-box
auditor that estimates, for a pair of w-neighboring input streams, the
worst-case likelihood ratio of the algorithm's output distribution over a
discretized output space,

    hat_eps = max_cell  ln( Pr[M(X) in cell] / Pr[M(X') in cell] ),

and checks ``hat_eps <= eps`` (up to sampling slack).  A mechanism that
*violated* the guarantee — e.g. one that reused budget or skipped the
input-dilution step — shows ``hat_eps`` well above ``eps``; the test
suite includes such a deliberately broken algorithm as a positive
control.

The audit is exponential in stream length (the output space is a product
of per-slot cells), so it targets short streams (1-3 slots) — exactly the
cases the paper's inductive proofs build on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from .._validation import ensure_positive_int, ensure_rng

__all__ = ["AuditResult", "audit_stream_algorithm", "audit_mechanism"]

#: factory signature: () -> object with perturb_stream(values, rng)
PerturberFactory = Callable[[], object]


@dataclass(frozen=True)
class AuditResult:
    """Outcome of one privacy audit.

    Attributes:
        epsilon_hat: the estimated worst-case log likelihood ratio.
        epsilon_claimed: the guarantee being audited.
        n_samples: Monte Carlo runs per input stream.
        n_cells: output cells compared (after pruning rare cells).
        passed: ``epsilon_hat <= epsilon_claimed + slack``.
        slack: the sampling tolerance used for the verdict.
    """

    epsilon_hat: float
    epsilon_claimed: float
    n_samples: int
    n_cells: int
    passed: bool
    slack: float


def _histogram_joint(
    outputs: np.ndarray, edges: "list[np.ndarray]"
) -> "dict[tuple, int]":
    """Count joint output cells for a (n_samples, T) output matrix."""
    counts: "dict[tuple, int]" = {}
    digitized = np.column_stack(
        [
            np.clip(np.digitize(outputs[:, j], edges[j]), 0, len(edges[j]))
            for j in range(outputs.shape[1])
        ]
    )
    for row in map(tuple, digitized):
        counts[row] = counts.get(row, 0) + 1
    return counts


def audit_stream_algorithm(
    factory: PerturberFactory,
    stream_a: Sequence[float],
    stream_b: Sequence[float],
    epsilon: float,
    n_samples: int = 20_000,
    n_bins: int = 4,
    min_cell_count: int = 20,
    slack: float = 0.35,
    rng: Optional[np.random.Generator] = None,
) -> AuditResult:
    """Audit a stream algorithm on one pair of neighboring streams.

    Args:
        factory: builds a fresh perturber per run (so no state leaks
            between Monte Carlo samples).
        stream_a, stream_b: the neighboring input streams (the caller is
            responsible for them being w-neighboring for the audited w).
        epsilon: the claimed total budget for the streams' window.
        n_samples: Monte Carlo runs per stream.
        n_bins: output cells per slot (joint space is ``n_bins ** T``).
        min_cell_count: cells rarer than this in *both* histograms are
            skipped (their ratio estimate is pure noise).
        slack: additive tolerance on ``epsilon_hat`` for the verdict.
        rng: randomness for the runs.

    Returns:
        An :class:`AuditResult`; ``passed`` is the verdict.
    """
    a = np.asarray(stream_a, dtype=float)
    b = np.asarray(stream_b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("neighboring streams must have equal length")
    ensure_positive_int(n_samples, "n_samples")
    ensure_positive_int(n_bins, "n_bins")
    rng = ensure_rng(rng)
    horizon = a.size

    def collect(stream: np.ndarray) -> np.ndarray:
        outputs = np.empty((n_samples, horizon))
        for i in range(n_samples):
            result = factory().perturb_stream(stream, rng)
            outputs[i] = result.perturbed
        return outputs

    out_a = collect(a)
    out_b = collect(b)

    # Shared quantile edges per slot keep cells comparable and roughly
    # equally populated.
    edges = []
    for j in range(horizon):
        pooled = np.concatenate([out_a[:, j], out_b[:, j]])
        qs = np.quantile(pooled, np.linspace(0, 1, n_bins + 1)[1:-1])
        edges.append(np.unique(qs))

    counts_a = _histogram_joint(out_a, edges)
    counts_b = _histogram_joint(out_b, edges)

    worst = 0.0
    n_cells = 0
    for cell in set(counts_a) | set(counts_b):
        ca = counts_a.get(cell, 0)
        cb = counts_b.get(cell, 0)
        if max(ca, cb) < min_cell_count:
            continue
        n_cells += 1
        # Add-one smoothing keeps empty-cell ratios finite; with
        # min_cell_count filtering the bias is negligible.
        ratio = (ca + 1.0) / (cb + 1.0)
        worst = max(worst, abs(math.log(ratio)))

    return AuditResult(
        epsilon_hat=worst,
        epsilon_claimed=float(epsilon),
        n_samples=n_samples,
        n_cells=n_cells,
        passed=worst <= epsilon + slack,
        slack=slack,
    )


def audit_mechanism(
    mechanism_factory: Callable[[], object],
    x_a: float,
    x_b: float,
    epsilon: float,
    n_samples: int = 50_000,
    n_bins: int = 12,
    min_cell_count: int = 50,
    slack: float = 0.25,
    rng: Optional[np.random.Generator] = None,
) -> AuditResult:
    """Audit a single-invocation mechanism on one input pair."""
    rng = ensure_rng(rng)
    mech = mechanism_factory()
    out_a = np.asarray(mech.perturb(np.full(n_samples, float(x_a)), rng)).reshape(-1, 1)
    out_b = np.asarray(mech.perturb(np.full(n_samples, float(x_b)), rng)).reshape(-1, 1)

    pooled = np.concatenate([out_a[:, 0], out_b[:, 0]])
    edges = [np.unique(np.quantile(pooled, np.linspace(0, 1, n_bins + 1)[1:-1]))]
    counts_a = _histogram_joint(out_a, edges)
    counts_b = _histogram_joint(out_b, edges)

    worst = 0.0
    n_cells = 0
    for cell in set(counts_a) | set(counts_b):
        ca, cb = counts_a.get(cell, 0), counts_b.get(cell, 0)
        if max(ca, cb) < min_cell_count:
            continue
        n_cells += 1
        worst = max(worst, abs(math.log((ca + 1.0) / (cb + 1.0))))

    return AuditResult(
        epsilon_hat=worst,
        epsilon_claimed=float(epsilon),
        n_samples=n_samples,
        n_cells=n_cells,
        passed=worst <= epsilon + slack,
        slack=slack,
    )
