"""Closed-form error predictions for the baseline estimators.

Analytic counterparts of the measured experiment numbers: for SW-direct
over an ``n``-slot subsequence the mean-estimate error decomposes exactly
into shrinkage bias plus averaged noise variance, both available in
closed form from the mechanism's moments.  The tests validate these
predictions against Monte Carlo, and the Fig. 4/6 discussions in
EXPERIMENTS.md lean on them (e.g. why sampling's win is a bias effect).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import ensure_epsilon, ensure_positive_int, ensure_stream
from ..mechanisms import SquareWaveMechanism

__all__ = [
    "MeanErrorPrediction",
    "predict_sw_direct_mean_error",
    "sw_shrinkage_slope",
]


def sw_shrinkage_slope(epsilon: float) -> float:
    """The SW mean map's slope: ``E[SW(x)] = center + slope * (x - center)``.

    ``slope = 2 b (p - q)`` — below 1, so every report is pulled toward
    the domain centre 0.5; the pull is what sampling's larger per-upload
    budgets mitigate (EXPERIMENTS.md, Fig. 6 discussion).
    """
    mech = SquareWaveMechanism(ensure_epsilon(epsilon))
    return 2.0 * mech.b * (mech.p - mech.q)


@dataclass(frozen=True)
class MeanErrorPrediction:
    """Predicted MSE decomposition of a subsequence-mean estimate."""

    bias: float
    variance: float

    @property
    def mse(self) -> float:
        return self.bias**2 + self.variance


def predict_sw_direct_mean_error(
    stream: Sequence[float],
    epsilon_per_slot: float,
) -> MeanErrorPrediction:
    """Exact bias/variance of SW-direct's subsequence-mean estimate.

    The estimator is ``(1/n) sum_t SW(x_t)`` with independent reports, so

        bias     = (1/n) sum_t (E[SW(x_t)] - x_t)
        variance = (1/n^2) sum_t Var[SW(x_t)]

    both computable from the mechanism's closed-form moments.
    """
    arr = ensure_stream(stream)
    eps = ensure_epsilon(epsilon_per_slot, "epsilon_per_slot")
    mech = SquareWaveMechanism(eps)
    n = ensure_positive_int(arr.size, "stream length")
    bias = float(np.mean(mech.expected_output(arr) - arr))
    variance = float(np.sum(mech.output_variance(arr))) / n**2
    return MeanErrorPrediction(bias=bias, variance=variance)
