"""Executable theory: empirical privacy audits and the paper's lemmas."""

from .lemmas import (
    LemmaComparison,
    lemma_iii1_mean_deviation,
    lemma_iv1_variance_reduction,
    lemma_iv2_history_depth,
    lemma_iv3_cosine_similarity,
    theorem5_dkw_bound_holds,
)
from .predictions import (
    MeanErrorPrediction,
    predict_sw_direct_mean_error,
    sw_shrinkage_slope,
)
from .privacy_audit import AuditResult, audit_mechanism, audit_stream_algorithm

__all__ = [
    "AuditResult",
    "audit_mechanism",
    "audit_stream_algorithm",
    "LemmaComparison",
    "lemma_iii1_mean_deviation",
    "lemma_iv1_variance_reduction",
    "lemma_iv2_history_depth",
    "lemma_iv3_cosine_similarity",
    "theorem5_dkw_bound_holds",
    "MeanErrorPrediction",
    "predict_sw_direct_mean_error",
    "sw_shrinkage_slope",
]
