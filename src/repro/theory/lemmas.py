"""Executable forms of the paper's utility lemmas.

Each function runs the Monte Carlo experiment that the corresponding
lemma predicts the outcome of, and returns both sides of the inequality
so callers (tests, notebooks) can check the claim at any scale:

* Lemma III.1 — IPP's mean deviation is below direct SW's.
* Lemma IV.1  — SMA smoothing divides the per-point variance.
* Lemma IV.2  — folding more history into the input shrinks the mean
  error of the running estimate.
* Lemma IV.3  — APP + smoothing has higher cosine similarity than direct
  perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .._validation import ensure_positive_int, ensure_rng, ensure_stream
from ..baselines import SWDirect
from ..core import APP, IPP
from ..metrics import cosine_distance

__all__ = [
    "LemmaComparison",
    "lemma_iii1_mean_deviation",
    "lemma_iv1_variance_reduction",
    "lemma_iv2_history_depth",
    "lemma_iv3_cosine_similarity",
    "theorem5_dkw_bound_holds",
]


@dataclass(frozen=True)
class LemmaComparison:
    """Both sides of a lemma's inequality plus the verdict.

    ``holds`` is ``lhs < rhs`` — every lemma here is of the form
    "the proposed method's error is smaller".
    """

    lhs: float
    rhs: float
    lhs_label: str
    rhs_label: str

    @property
    def holds(self) -> bool:
        return self.lhs < self.rhs

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        op = "<" if self.holds else ">="
        return f"{self.lhs_label}={self.lhs:.5g} {op} {self.rhs_label}={self.rhs:.5g}"


def lemma_iii1_mean_deviation(
    stream: Sequence[float],
    epsilon: float = 1.0,
    w: int = 10,
    n_repeats: int = 30,
    rng: Optional[np.random.Generator] = None,
) -> LemmaComparison:
    """Lemma III.1: ``MD(IPP) < MD(SW)`` (absolute mean deviations)."""
    arr = ensure_stream(stream)
    ensure_positive_int(n_repeats, "n_repeats")
    rng = ensure_rng(rng)
    ipp_devs, sw_devs = [], []
    for _ in range(n_repeats):
        ipp = IPP(epsilon, w).perturb_stream(arr, rng)
        direct = SWDirect(epsilon, w).perturb_stream(arr, rng)
        ipp_devs.append(abs(ipp.perturbed.mean() - arr.mean()))
        sw_devs.append(abs(direct.perturbed.mean() - arr.mean()))
    return LemmaComparison(
        lhs=float(np.mean(ipp_devs)),
        rhs=float(np.mean(sw_devs)),
        lhs_label="MD(IPP)",
        rhs_label="MD(SW)",
    )


def lemma_iv1_variance_reduction(
    epsilon: float = 1.0,
    w: int = 10,
    smoothing_window: int = 3,
    n_repeats: int = 200,
    stream_length: int = 60,
    rng: Optional[np.random.Generator] = None,
) -> LemmaComparison:
    """Lemma IV.1: ``Var(y_t) < Var(x'_t)`` at an interior point."""
    rng = ensure_rng(rng)
    stream = np.full(stream_length, 0.5)
    t = stream_length // 2
    raw, smoothed = [], []
    for _ in range(ensure_positive_int(n_repeats, "n_repeats")):
        result = APP(epsilon, w, smoothing_window=smoothing_window).perturb_stream(
            stream, rng
        )
        raw.append(result.perturbed[t])
        smoothed.append(result.published[t])
    return LemmaComparison(
        lhs=float(np.var(smoothed)),
        rhs=float(np.var(raw)),
        lhs_label="Var(smoothed)",
        rhs_label="Var(raw)",
    )


def lemma_iv2_history_depth(
    stream: Sequence[float],
    epsilon: float = 1.0,
    w: int = 10,
    n_repeats: int = 30,
    rng: Optional[np.random.Generator] = None,
) -> LemmaComparison:
    """Lemma IV.2: accumulating the full history beats one-step feedback.

    Compares APP (full accumulated deviation) against IPP (only the last
    deviation) on the running-mean error — the practical reading of
    ``ME(d_i..d_t) < ME(d_t)``.
    """
    arr = ensure_stream(stream)
    rng = ensure_rng(rng)
    app_errors, ipp_errors = [], []
    for _ in range(ensure_positive_int(n_repeats, "n_repeats")):
        app = APP(epsilon, w).perturb_stream(arr, rng)
        ipp = IPP(epsilon, w).perturb_stream(arr, rng)
        app_errors.append(abs(app.mean_estimate() - arr.mean()))
        ipp_errors.append(abs(ipp.mean_estimate() - arr.mean()))
    return LemmaComparison(
        lhs=float(np.mean(app_errors)),
        rhs=float(np.mean(ipp_errors)),
        lhs_label="ME(APP)",
        rhs_label="ME(IPP)",
    )


def theorem5_dkw_bound_holds(
    eta: float = 0.2,
    beta: float = 0.1,
    delta: float = 0.05,
    n_trials: int = 50,
    rng: Optional[np.random.Generator] = None,
) -> "tuple[int, float]":
    """Empirically check Theorem 5's crowd-level guarantee.

    Draws ``N`` (from the theorem's sample bound) true feature values per
    trial, corrupts each by at most ``beta``, and measures how often the
    empirical CDF of the corrupted values strays more than ``eta`` from
    the true distribution.

    Returns:
        ``(N, failure_rate)``; the theorem promises ``failure_rate <=
        delta`` (up to trial noise).
    """
    from ..analysis import dkw_sample_bound
    from ..metrics import empirical_cdf

    rng = ensure_rng(rng)
    n = dkw_sample_bound(eta, beta, delta)
    grid = np.linspace(0.0, 1.0, 400)
    failures = 0
    for _ in range(ensure_positive_int(n_trials, "n_trials")):
        truth = rng.random(n)  # F = Uniform(0, 1), so F(x) = x on the grid
        corrupted = np.clip(truth + rng.uniform(-beta, beta, size=n), 0.0, 1.0)
        gap = np.abs(empirical_cdf(corrupted, grid) - grid).max()
        if gap > eta:
            failures += 1
    return n, failures / n_trials


def lemma_iv3_cosine_similarity(
    stream: Sequence[float],
    epsilon: float = 1.0,
    w: int = 10,
    n_repeats: int = 30,
    rng: Optional[np.random.Generator] = None,
) -> LemmaComparison:
    """Lemma IV.3: ``E[cos(APP+smoothing)] > E[cos(direct)]``.

    Expressed as distances so the comparison stays "smaller is better":
    ``1 - cos_sim(APP) < 1 - cos_sim(direct)``.
    """
    arr = ensure_stream(stream)
    rng = ensure_rng(rng)
    app_scores, direct_scores = [], []
    for _ in range(ensure_positive_int(n_repeats, "n_repeats")):
        app = APP(epsilon, w).perturb_stream(arr, rng)
        direct = SWDirect(epsilon, w).perturb_stream(arr, rng)
        app_scores.append(cosine_distance(app.published, arr))
        direct_scores.append(cosine_distance(direct.published, arr))
    return LemmaComparison(
        lhs=float(np.mean(app_scores)),
        rhs=float(np.mean(direct_scores)),
        lhs_label="1-cos(APP)",
        rhs_label="1-cos(direct)",
    )
