"""Table I: mean-estimation MSE of ToPL vs the SW-based algorithms.

Configuration from the paper: C6H6 and Taxi, ``eps = 1``, window sizes
``w in {20, 40, 60}``, algorithms SW-direct / IPP / APP / ToPL; the metric
is the MSE of the subsequence-mean estimate, averaged over random
subsequences of length ``w``.
"""

from __future__ import annotations

from typing import Dict, Sequence


from ..datasets import load_stream
from .reporting import format_table
from .runner import mean_squared_error_of_mean, run_epsilon_sweep

__all__ = ["run_table1", "format_table1", "TABLE1_ALGORITHMS"]

TABLE1_ALGORITHMS = ("sw-direct", "ipp", "app", "topl")


def run_table1(
    epsilon: float = 1.0,
    windows: Sequence[int] = (20, 40, 60),
    datasets: Sequence[str] = ("c6h6", "taxi"),
    n_subsequences: int = 50,
    n_repeats: int = 1,
    stream_length: int = 2_000,
    seed: int = 0,
    engine: str = "vectorized",
) -> "Dict[str, Dict[int, Dict[str, float]]]":
    """Compute Table I cells: ``result[dataset][w][algorithm] -> MSE``.

    ``engine="vectorized"`` (default) runs every cell as one population
    pass over the stacked subsequences; ``"scalar"`` keeps the per-user
    reference loop (see :func:`~repro.experiments.run_epsilon_sweep`).
    """
    result: Dict[str, Dict[int, Dict[str, float]]] = {}
    for dataset in datasets:
        stream = load_stream(dataset, length=stream_length)
        result[dataset] = {}
        for w in windows:
            sweep = run_epsilon_sweep(
                stream,
                TABLE1_ALGORITHMS,
                epsilons=[epsilon],
                w=w,
                metric=mean_squared_error_of_mean,
                n_subsequences=n_subsequences,
                n_repeats=n_repeats,
                seed=seed,
                engine=engine,
            )
            result[dataset][w] = {
                name: series[0] for name, series in sweep.values.items()
            }
    return result


def format_table1(result: "Dict[str, Dict[int, Dict[str, float]]]") -> str:
    """Render Table I in the paper's row layout."""
    headers = ["dataset", "w"] + list(TABLE1_ALGORITHMS)
    rows = []
    for dataset, per_w in result.items():
        for w, cells in sorted(per_w.items()):
            rows.append([dataset, w] + [cells[a] for a in TABLE1_ALGORITHMS])
    return format_table(headers, rows, title="Table I: mean-estimation MSE (eps=1)")
