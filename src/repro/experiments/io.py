"""Persistence for experiment results (JSON round-trip).

Sweep results and grid results are plain nested dicts with tuple keys in
some runners; these helpers normalize them into a JSON-safe document with
enough metadata to regenerate plots or diff runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

__all__ = ["ResultDocument", "save_results", "load_results"]

#: document format version (bump on breaking layout changes)
FORMAT_VERSION = 1


@dataclass
class ResultDocument:
    """A named experiment result plus its run parameters."""

    experiment: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    results: Dict[str, Any] = field(default_factory=dict)
    version: int = FORMAT_VERSION

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ResultDocument":
        data = json.loads(text)
        version = data.get("version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported result document version {version!r} "
                f"(expected {FORMAT_VERSION})"
            )
        return ResultDocument(
            experiment=data["experiment"],
            parameters=data.get("parameters", {}),
            results=data.get("results", {}),
            version=version,
        )


def _stringify_keys(obj: Any) -> Any:
    """Recursively convert non-string dict keys (tuples, ints) to strings."""
    if isinstance(obj, dict):
        return {
            (k if isinstance(k, str) else repr(k)): _stringify_keys(v)
            for k, v in obj.items()
        }
    if isinstance(obj, (list, tuple)):
        return [_stringify_keys(v) for v in obj]
    if hasattr(obj, "tolist"):  # numpy array or scalar
        return obj.tolist()
    return obj


def save_results(
    path: str,
    experiment: str,
    results: Dict[str, Any],
    parameters: Optional[Dict[str, Any]] = None,
) -> None:
    """Write an experiment result document to ``path`` (JSON)."""
    document = ResultDocument(
        experiment=experiment,
        parameters=_stringify_keys(parameters or {}),
        results=_stringify_keys(results),
    )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(document.to_json())


def load_results(path: str) -> ResultDocument:
    """Read a result document previously written by :func:`save_results`."""
    with open(path) as fh:
        return ResultDocument.from_json(fh.read())
