"""Terminal plotting for experiment results (no matplotlib required).

Offline environments rarely have plotting stacks; these helpers render
sweeps and streams as Unicode charts good enough to see the paper's
shapes — orderings, trends, crossovers — straight in the terminal.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from .._validation import ensure_positive_int, ensure_stream

__all__ = ["sparkline", "line_chart", "sweep_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line Unicode sparkline of a series."""
    arr = ensure_stream(values)
    lo, hi = float(arr.min()), float(arr.max())
    if hi == lo:
        return _SPARK_LEVELS[0] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(v))] for v in scaled)


def line_chart(
    values: Sequence[float],
    height: int = 10,
    width: Optional[int] = None,
    title: str = "",
) -> str:
    """Multi-row dot chart of one series.

    Args:
        values: the series to plot.
        height: chart rows.
        width: downsample the series to this many columns (default: no
            downsampling).
        title: optional first line.
    """
    arr = ensure_stream(values)
    height = ensure_positive_int(height, "height")
    if width is not None:
        width = ensure_positive_int(width, "width")
        if arr.size > width:
            # Bucket means preserve shape better than strided sampling.
            edges = np.linspace(0, arr.size, width + 1).astype(int)
            arr = np.array(
                [arr[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
            )
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo or 1.0
    rows = [[" "] * arr.size for _ in range(height)]
    for x, value in enumerate(arr):
        y = int(round((value - lo) / span * (height - 1)))
        rows[height - 1 - y][x] = "•"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:.4g} ┐")
    lines.extend("      │" + "".join(row) for row in rows)
    lines.append(f"{lo:.4g} ┘")
    return "\n".join(lines)


def sweep_chart(
    epsilons: Sequence[float],
    values: Mapping[str, Sequence[float]],
    title: str = "",
    log_scale: bool = False,
) -> str:
    """Per-algorithm sparklines for an epsilon sweep, annotated with range.

    ``log_scale`` sparkifies ``log10`` of the values — useful when a
    baseline (e.g. ToPL) is orders of magnitude above the rest.
    """
    lines = []
    if title:
        lines.append(title)
    lines.append("eps grid: " + "  ".join(f"{e:g}" for e in epsilons))
    name_width = max((len(name) for name in values), default=0)
    for name in sorted(values):
        series = np.asarray(values[name], dtype=float)
        shown = np.log10(np.maximum(series, 1e-300)) if log_scale else series
        lines.append(
            f"{name.ljust(name_width)}  {sparkline(shown)}  "
            f"[{series.min():.3g} .. {series.max():.3g}]"
        )
    return "\n".join(lines)
