"""Plain-text rendering of experiment results (paper-style tables)."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_sweep"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_format: str = "{:.4g}",
) -> str:
    """Render an aligned monospace table.

    Floats are formatted with ``float_format``; other values with ``str``.
    """
    rendered = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_sweep(
    epsilons: Sequence[float],
    values: Mapping[str, Sequence[float]],
    title: str = "",
    float_format: str = "{:.4g}",
) -> str:
    """Render an epsilon sweep as one row per algorithm."""
    headers = ["algorithm"] + [f"eps={e:g}" for e in epsilons]
    rows = [[name] + [float(v) for v in series] for name, series in sorted(values.items())]
    return format_table(headers, rows, title=title, float_format=float_format)
