"""Per-slot value-distribution reconstruction study (beyond the paper).

The paper's collector estimates means and trends; the SW machinery we
built also supports full distribution reconstruction at a slot via EM
(Li et al. 2020).  This study measures reconstruction quality — the
Wasserstein distance between the EM estimate and the true cross-user
value distribution at a slot — as a function of the budget and the
population size.  It quantifies when the protocol's
``Collector.estimate_slot_distribution`` is actually informative.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .._validation import ensure_rng
from ..mechanisms import SquareWaveMechanism
from ..metrics import wasserstein_distance

__all__ = ["run_distribution_study"]


def _sample_population(
    shape: str, n_users: int, rng: np.random.Generator
) -> np.ndarray:
    if shape == "gaussian":
        return np.clip(rng.normal(0.6, 0.12, size=n_users), 0.0, 1.0)
    if shape == "bimodal":
        flags = rng.random(n_users) < 0.5
        return np.clip(
            np.where(
                flags,
                rng.normal(0.25, 0.06, size=n_users),
                rng.normal(0.75, 0.06, size=n_users),
            ),
            0.0,
            1.0,
        )
    if shape == "uniform":
        return rng.random(n_users)
    raise KeyError(f"unknown population shape {shape!r}")


def run_distribution_study(
    shapes: Sequence[str] = ("gaussian", "bimodal", "uniform"),
    epsilons: Sequence[float] = (0.1, 0.5, 1.0, 2.0),
    n_users: int = 5_000,
    n_bins: int = 32,
    rng: Optional[np.random.Generator] = None,
) -> "Dict[str, Dict[float, float]]":
    """EM reconstruction quality per population shape and budget.

    Returns:
        ``result[shape][epsilon] -> Wasserstein distance`` between the EM
        estimate (resampled to user granularity) and the true values.
    """
    rng = ensure_rng(rng)
    result: Dict[str, Dict[float, float]] = {}
    for shape in shapes:
        truth = _sample_population(shape, n_users, rng)
        per_eps: Dict[float, float] = {}
        for epsilon in epsilons:
            mech = SquareWaveMechanism(float(epsilon))
            reports = mech.perturb(truth, rng)
            distribution = mech.estimate_distribution(reports, n_bins=n_bins)
            centers = (np.arange(n_bins) + 0.5) / n_bins
            # Turn the estimated histogram into a sample for the metric.
            counts = np.round(distribution * n_users).astype(int)
            estimate = np.repeat(centers, np.maximum(counts, 0))
            if estimate.size == 0:
                estimate = centers
            per_eps[float(epsilon)] = wasserstein_distance(estimate, truth)
        result[shape] = per_eps
    return result
