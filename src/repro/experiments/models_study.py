"""Privacy-model study: event-level vs w-event vs user-level (Section I).

Not a paper figure, but the paper's introduction motivates w-event LDP as
the balanced point between the two classical stream-privacy models.  This
study makes that trade-off measurable: the same algorithm runs under all
three allocation models on the same horizon, reporting utility
(mean-estimation MSE and publication cosine distance) next to the length
of the protected span.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .._validation import ensure_rng
from ..core import APP
from ..metrics import cosine_distance
from ..privacy import EventLevel, PrivacyModel, UserLevel, WEvent

__all__ = ["run_models_study"]


def _models(epsilon: float, w: int) -> "list[PrivacyModel]":
    return [EventLevel(epsilon), WEvent(epsilon, w), UserLevel(epsilon)]


def run_models_study(
    stream: Sequence[float],
    epsilon: float = 1.0,
    w: int = 10,
    n_repeats: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> "Dict[str, Dict[str, float]]":
    """Run APP under each privacy model on one stream.

    The per-slot budget comes from the model; APP's internal window is set
    so that ``epsilon_per_slot`` matches the model's allocation (the
    accountant then audits the *model's* guarantee).

    Returns:
        ``{model_name: {"per_slot": ..., "protected_span": ...,
        "mean_mse": ..., "cosine": ...}}``
    """
    arr = np.asarray(stream, dtype=float)
    rng = ensure_rng(rng)
    horizon = arr.size
    study: Dict[str, Dict[str, float]] = {}
    for model in _models(epsilon, w):
        per_slot = model.per_slot_budget(horizon)
        # Express the allocation as an equivalent (epsilon, w) pair for the
        # APP constructor: per-slot budget = epsilon / window.
        window = max(int(round(epsilon / per_slot)), 1)
        mse_scores, cos_scores = [], []
        for _ in range(n_repeats):
            result = APP(epsilon, window).perturb_stream(arr, rng)
            mse_scores.append((result.mean_estimate() - arr.mean()) ** 2)
            cos_scores.append(cosine_distance(result.published, arr))
        study[type(model).__name__] = {
            "per_slot": per_slot,
            "protected_span": float(model.protected_span(horizon)),
            "mean_mse": float(np.mean(mse_scores)),
            "cosine": float(np.mean(cos_scores)),
        }
    return study
