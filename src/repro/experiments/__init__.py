"""Experiment harness: one runner per table/figure of the paper."""

from .distribution_study import run_distribution_study
from .figures import (
    DEFAULT_EPSILONS,
    FIG6_PANELS,
    FIG8_PANELS,
    FIG9_ALGORITHMS,
    FIG10_STRATEGIES,
    NON_SAMPLING_ALGORITHMS,
    SAMPLING_ALGORITHMS,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
)
from .io import ResultDocument, load_results, save_results
from .models_study import run_models_study
from .plotting import line_chart, sparkline, sweep_chart
from .registry import (
    ALGORITHM_FACTORIES,
    algorithm_names,
    capabilities,
    capability_matrix,
    make_algorithm,
    make_batch_engine,
)
from .reporting import format_sweep, format_table
from .runner import (
    SweepResult,
    mean_squared_error_of_mean,
    publication_cosine_distance,
    publication_jsd,
    run_epsilon_sweep,
    run_live_study,
    run_scenario_study,
    sample_subsequences,
)
from .table1 import TABLE1_ALGORITHMS, format_table1, run_table1

__all__ = [
    "DEFAULT_EPSILONS",
    "NON_SAMPLING_ALGORITHMS",
    "SAMPLING_ALGORITHMS",
    "FIG6_PANELS",
    "FIG8_PANELS",
    "FIG9_ALGORITHMS",
    "FIG10_STRATEGIES",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_table1",
    "format_table1",
    "TABLE1_ALGORITHMS",
    "make_algorithm",
    "make_batch_engine",
    "algorithm_names",
    "capabilities",
    "capability_matrix",
    "ALGORITHM_FACTORIES",
    "run_epsilon_sweep",
    "run_live_study",
    "run_scenario_study",
    "sample_subsequences",
    "mean_squared_error_of_mean",
    "publication_cosine_distance",
    "publication_jsd",
    "SweepResult",
    "format_table",
    "format_sweep",
    "ResultDocument",
    "save_results",
    "load_results",
    "run_models_study",
    "run_distribution_study",
    "sparkline",
    "line_chart",
    "sweep_chart",
]
