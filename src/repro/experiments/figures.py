"""Runners for every figure in Section VI.

Each ``run_figN`` mirrors the corresponding figure's grid; all accept
scale-reduction knobs (``n_subsequences``, ``n_repeats``,
``stream_length``, dataset sizes) so benchmarks finish quickly while
examples can run at paper scale.  Values are returned in plain dicts keyed
the way the figure panels are.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..analysis import crowd_mean_distribution_distance
from ..core import CAPP, BudgetSplit, SampleSplit
from ..datasets import load_matrix, load_stream, sin_matrix
from ..metrics import cosine_distance
from .registry import make_algorithm
from .runner import (
    mean_squared_error_of_mean,
    publication_cosine_distance,
    run_epsilon_sweep,
    sample_subsequences,
)

__all__ = [
    "DEFAULT_EPSILONS",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
]

#: the paper's privacy-budget grid
DEFAULT_EPSILONS = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)

NON_SAMPLING_ALGORITHMS = ("sw-direct", "ba-sw", "ipp", "app", "capp")
SAMPLING_ALGORITHMS = ("sw-direct", "app", "capp", "sampling", "app-s", "capp-s")

SweepDict = Dict[str, "list[float]"]


def _sweep_grid(
    datasets: Sequence[str],
    windows: Sequence[int],
    algorithms: Sequence[str],
    epsilons: Sequence[float],
    metric: Callable,
    query_length: Optional[int],
    n_subsequences: int,
    n_repeats: int,
    stream_length: int,
    seed: int,
    engine: str,
) -> "Dict[str, Dict[int, SweepDict]]":
    result: Dict[str, Dict[int, SweepDict]] = {}
    for dataset in datasets:
        stream = load_stream(dataset, length=stream_length)
        result[dataset] = {}
        for w in windows:
            sweep = run_epsilon_sweep(
                stream,
                algorithms,
                epsilons=epsilons,
                w=w,
                query_length=query_length,
                metric=metric,
                n_subsequences=n_subsequences,
                n_repeats=n_repeats,
                seed=seed,
                engine=engine,
            )
            result[dataset][w] = sweep.values
    return result


def run_fig4(
    datasets: Sequence[str] = ("c6h6", "volume", "taxi", "power"),
    windows: Sequence[int] = (10, 30, 50),
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    algorithms: Sequence[str] = NON_SAMPLING_ALGORITHMS,
    n_subsequences: int = 50,
    n_repeats: int = 1,
    stream_length: int = 2_000,
    seed: int = 0,
    engine: str = "vectorized",
) -> "Dict[str, Dict[int, SweepDict]]":
    """Fig. 4: mean-estimation MSE vs eps, per dataset and window size."""
    return _sweep_grid(
        datasets,
        windows,
        algorithms,
        epsilons,
        mean_squared_error_of_mean,
        None,
        n_subsequences,
        n_repeats,
        stream_length,
        seed,
        engine,
    )


def run_fig5(
    datasets: Sequence[str] = ("c6h6", "volume", "taxi", "power"),
    windows: Sequence[int] = (10, 30, 50),
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    algorithms: Sequence[str] = NON_SAMPLING_ALGORITHMS,
    n_subsequences: int = 50,
    n_repeats: int = 1,
    stream_length: int = 2_000,
    seed: int = 0,
    engine: str = "vectorized",
) -> "Dict[str, Dict[int, SweepDict]]":
    """Fig. 5: publication cosine distance vs eps."""
    return _sweep_grid(
        datasets,
        windows,
        algorithms,
        epsilons,
        publication_cosine_distance,
        None,
        n_subsequences,
        n_repeats,
        stream_length,
        seed,
        engine,
    )


#: Fig. 6/7 panel configurations: (dataset, w, q)
FIG6_PANELS = (
    ("volume", 20, 10),
    ("volume", 30, 10),
    ("volume", 30, 20),
    ("volume", 30, 40),
    ("volume", 20, 30),
    ("c6h6", 20, 30),
    ("power", 20, 30),
    ("taxi", 20, 30),
)


def run_fig6(
    panels: Sequence["tuple[str, int, int]"] = FIG6_PANELS,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    algorithms: Sequence[str] = SAMPLING_ALGORITHMS,
    n_subsequences: int = 50,
    n_repeats: int = 1,
    stream_length: int = 2_000,
    seed: int = 0,
    engine: str = "vectorized",
) -> "Dict[tuple, SweepDict]":
    """Fig. 6: mean-estimation MSE, sampling vs non-sampling."""
    result: Dict[tuple, SweepDict] = {}
    for dataset, w, q in panels:
        stream = load_stream(dataset, length=stream_length)
        sweep = run_epsilon_sweep(
            stream,
            algorithms,
            epsilons=epsilons,
            w=w,
            query_length=q,
            metric=mean_squared_error_of_mean,
            n_subsequences=n_subsequences,
            n_repeats=n_repeats,
            seed=seed,
            engine=engine,
        )
        result[(dataset, w, q)] = sweep.values
    return result


def run_fig7(
    panels: Sequence["tuple[str, int, int]"] = FIG6_PANELS,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    algorithms: Sequence[str] = SAMPLING_ALGORITHMS,
    n_subsequences: int = 50,
    n_repeats: int = 1,
    stream_length: int = 2_000,
    seed: int = 0,
    engine: str = "vectorized",
) -> "Dict[tuple, SweepDict]":
    """Fig. 7: publication cosine distance, sampling vs non-sampling."""
    result: Dict[tuple, SweepDict] = {}
    for dataset, w, q in panels:
        stream = load_stream(dataset, length=stream_length)
        sweep = run_epsilon_sweep(
            stream,
            algorithms,
            epsilons=epsilons,
            w=w,
            query_length=q,
            metric=publication_cosine_distance,
            n_subsequences=n_subsequences,
            n_repeats=n_repeats,
            seed=seed,
            engine=engine,
        )
        result[(dataset, w, q)] = sweep.values
    return result


#: Fig. 8 panels: (dataset, w, q, sampling?)
FIG8_PANELS = (
    ("taxi", 10, 10, False),
    ("taxi", 30, 30, False),
    ("power", 10, 10, False),
    ("power", 30, 30, False),
    ("taxi", 20, 10, True),
    ("taxi", 20, 30, True),
    ("taxi", 30, 10, True),
    ("taxi", 30, 40, True),
)


def run_fig8(
    panels: Sequence["tuple[str, int, int, bool]"] = FIG8_PANELS,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    n_users: int = 200,
    n_repeats: int = 1,
    seed: int = 0,
) -> "Dict[tuple, SweepDict]":
    """Fig. 8: Wasserstein distance between estimated and true mean
    distributions across the user population (averaged over repeats)."""
    non_sampling = ("sw-direct", "ba-sw", "ipp", "app", "capp")
    sampling = ("sw-direct", "app", "capp", "sampling", "app-s", "capp-s")
    result: Dict[tuple, SweepDict] = {}
    for dataset, w, q, use_sampling in panels:
        matrix = load_matrix(dataset, n_users=n_users)
        rng = np.random.default_rng(seed)
        start = int(rng.integers(0, matrix.shape[1] - q + 1))
        block = matrix[:, start : start + q]
        algorithms = sampling if use_sampling else non_sampling
        values: SweepDict = {name: [] for name in algorithms}
        for epsilon in epsilons:
            for name in algorithms:
                distances = [
                    crowd_mean_distribution_distance(
                        block,
                        factory=lambda n=name, e=epsilon: make_algorithm(n, e, w),
                        rng=rng,
                    )
                    for _ in range(n_repeats)
                ]
                values[name].append(float(np.mean(distances)))
        result[(dataset, w, q, use_sampling)] = values
    return result


FIG9_ALGORITHMS = (
    "laplace-direct",
    "laplace-app",
    "sr-direct",
    "sr-app",
    "pm-direct",
    "pm-app",
    "sw-direct",
    "sw-app",
)


def run_fig9(
    datasets: Sequence[str] = ("c6h6", "volume"),
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    w: int = 10,
    n_subsequences: int = 50,
    n_repeats: int = 1,
    stream_length: int = 2_000,
    seed: int = 0,
    engine: str = "vectorized",
) -> "Dict[str, Dict[str, SweepDict]]":
    """Fig. 9: mechanism generalizability (MSE and cosine distance)."""
    result: Dict[str, Dict[str, SweepDict]] = {}
    for dataset in datasets:
        stream = load_stream(dataset, length=stream_length)
        mse_sweep = run_epsilon_sweep(
            stream,
            FIG9_ALGORITHMS,
            epsilons=epsilons,
            w=w,
            metric=mean_squared_error_of_mean,
            n_subsequences=n_subsequences,
            n_repeats=n_repeats,
            seed=seed,
            engine=engine,
        )
        cos_sweep = run_epsilon_sweep(
            stream,
            FIG9_ALGORITHMS,
            epsilons=epsilons,
            w=w,
            metric=publication_cosine_distance,
            n_subsequences=n_subsequences,
            n_repeats=n_repeats,
            seed=seed,
            engine=engine,
        )
        result[dataset] = {"mse": mse_sweep.values, "cosine": cos_sweep.values}
    return result


#: Fig. 10 strategies: name -> (strategy class, per-dimension factory name)
FIG10_STRATEGIES = (
    ("sw-bs", BudgetSplit, "sw-direct"),
    ("app-bs", BudgetSplit, "app"),
    ("capp-bs", BudgetSplit, "capp"),
    ("sw-ss", SampleSplit, "sw-direct"),
    ("app-ss", SampleSplit, "app"),
    ("capp-ss", SampleSplit, "capp"),
)


def run_fig10(
    dimensions: Sequence[int] = (5, 10),
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    w: int = 10,
    length: int = 200,
    n_repeats: int = 3,
    seed: int = 0,
) -> "Dict[int, Dict[str, Dict[str, list]]]":
    """Fig. 10: Budget-Split vs Sample-Split on Sin-data.

    Returns ``result[d][metric][strategy] -> series over epsilons`` with
    metrics ``"mse"`` (per-dimension mean estimation, averaged) and
    ``"cosine"`` (published vs true, averaged over dimensions).
    """
    result: Dict[int, Dict[str, Dict[str, list]]] = {}
    for d in dimensions:
        matrix = sin_matrix(d, length)
        true_means = matrix.mean(axis=1)
        per_metric: Dict[str, Dict[str, list]] = {
            "mse": {name: [] for name, _, _ in FIG10_STRATEGIES},
            "cosine": {name: [] for name, _, _ in FIG10_STRATEGIES},
        }
        for epsilon in epsilons:
            for name, strategy_cls, inner_name in FIG10_STRATEGIES:
                rng = np.random.default_rng(seed)
                mse_scores, cos_scores = [], []
                for _ in range(n_repeats):
                    strategy = strategy_cls(
                        factory=lambda e, win, inner=inner_name: make_algorithm(
                            inner, e, win
                        ),
                        epsilon=epsilon,
                        w=w,
                    )
                    run = strategy.perturb_matrix(matrix, rng)
                    mse_scores.append(
                        float(np.mean((run.mean_estimates() - true_means) ** 2))
                    )
                    cos_scores.append(
                        float(
                            np.mean(
                                [
                                    cosine_distance(run.published[i], matrix[i])
                                    for i in range(d)
                                ]
                            )
                        )
                    )
                per_metric["mse"][name].append(float(np.mean(mse_scores)))
                per_metric["cosine"][name].append(float(np.mean(cos_scores)))
        result[d] = per_metric
    return result


def run_fig11(
    datasets: Sequence[str] = ("constant", "pulse", "sinusoidal", "c6h6"),
    epsilons: Sequence[float] = (0.5, 1.0, 2.0, 3.0, 5.0),
    deltas: Sequence[float] = tuple(np.round(np.arange(-0.45, 0.51, 0.05), 2)),
    w: int = 10,
    n_subsequences: int = 20,
    n_repeats: int = 1,
    stream_length: int = 1_000,
    seed: int = 0,
) -> "Dict[str, Dict[float, list]]":
    """Fig. 11: sensitivity of the CAPP clip parameter delta on MSE.

    Returns ``result[dataset][epsilon] -> MSE series over deltas`` (the
    paper sweeps delta in [-1, 0.5]; deltas <= -0.5 collapse the clip range
    and are excluded).
    """
    result: Dict[str, Dict[float, list]] = {}
    for dataset in datasets:
        stream = load_stream(dataset, length=stream_length)
        rng = np.random.default_rng(seed)
        subsequences = sample_subsequences(stream, w, n_subsequences, rng)
        per_eps: Dict[float, list] = {}
        for epsilon in epsilons:
            series = []
            for delta in deltas:
                scores = []
                for sub in subsequences:
                    capp = CAPP(
                        epsilon,
                        w,
                        clip_bounds=(0.0 - delta, 1.0 + delta),
                    )
                    for _ in range(n_repeats):
                        run = capp.perturb_stream(sub, rng)
                        scores.append(
                            (run.mean_estimate() - float(sub.mean())) ** 2
                        )
                series.append(float(np.mean(scores)))
            per_eps[float(epsilon)] = series
        result[dataset] = per_eps
    return result
