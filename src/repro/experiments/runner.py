"""Generic experiment runner shared by every table and figure.

The paper's protocol (Section VI-B): draw 50 random subsequences of the
query length from each dataset, run every algorithm on each subsequence,
and average the utility metric over subsequences and repetitions.  The
runner fixes seeds so results are reproducible while remaining i.i.d.
across subsequences/repetitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Sequence

import numpy as np

from .._validation import ensure_positive_int, ensure_rng, ensure_stream
from ..core.base import StreamPerturber
from ..metrics import cosine_distance, jensen_shannon_divergence
from .registry import make_algorithm

__all__ = [
    "sample_subsequences",
    "mean_squared_error_of_mean",
    "publication_cosine_distance",
    "publication_jsd",
    "SweepResult",
    "run_epsilon_sweep",
    "run_scenario_study",
    "run_live_study",
]

Metric = Callable[[StreamPerturber, np.ndarray, np.random.Generator], float]


def sample_subsequences(
    stream: Sequence[float],
    length: int,
    count: int,
    rng: Optional[np.random.Generator] = None,
) -> "list[np.ndarray]":
    """Draw ``count`` random subsequences of ``length`` slots.

    Sampling is with replacement over start offsets, matching the paper's
    "50 randomly sampled time subsequences".
    """
    arr = ensure_stream(stream)
    length = ensure_positive_int(length, "length")
    count = ensure_positive_int(count, "count")
    if length > arr.size:
        raise ValueError(
            f"subsequence length {length} exceeds stream length {arr.size}"
        )
    rng = ensure_rng(rng)
    starts = rng.integers(0, arr.size - length + 1, size=count)
    return [arr[s : s + length] for s in starts]


def mean_squared_error_of_mean(
    perturber: StreamPerturber,
    subsequence: np.ndarray,
    rng: np.random.Generator,
) -> float:
    """Squared error of the collector's subsequence-mean estimate."""
    result = perturber.perturb_stream(subsequence, rng)
    return (result.mean_estimate() - float(subsequence.mean())) ** 2


def publication_cosine_distance(
    perturber: StreamPerturber,
    subsequence: np.ndarray,
    rng: np.random.Generator,
) -> float:
    """Cosine distance between the published and true streams."""
    result = perturber.perturb_stream(subsequence, rng)
    return cosine_distance(result.published, subsequence)


def publication_jsd(
    perturber: StreamPerturber,
    subsequence: np.ndarray,
    rng: np.random.Generator,
) -> float:
    """JSD between value histograms of the published and true streams."""
    result = perturber.perturb_stream(subsequence, rng)
    return jensen_shannon_divergence(result.published, subsequence)


@dataclass
class SweepResult:
    """Result of one epsilon sweep: ``values[algorithm][i]`` at ``epsilons[i]``."""

    epsilons: "list[float]"
    values: "Dict[str, list[float]]"

    def best_algorithm(self, epsilon_index: int) -> str:
        """Name of the algorithm with the smallest value at one epsilon."""
        return min(self.values, key=lambda name: self.values[name][epsilon_index])

    def as_rows(self) -> "list[tuple[str, list[float]]]":
        """Rows sorted by algorithm name (for printing)."""
        return sorted(self.values.items())


def _population_metric_scores(
    metric: Metric,
    perturber: StreamPerturber,
    matrix: np.ndarray,
    rng: np.random.Generator,
) -> Optional[np.ndarray]:
    """Per-row scores of a standard metric over one population pass.

    One ``perturb_population`` call replaces ``n_rows`` scalar
    ``perturb_stream`` calls: every subsequence (x repetition) becomes a
    user-row of the matrix and the metric is evaluated row-wise on the
    population result.  Returns ``None`` for metrics without a
    population form (the sweep falls back to the scalar loop).
    """
    if metric is mean_squared_error_of_mean:
        result = perturber.perturb_population(matrix, rng)
        return (result.mean_estimates() - matrix.mean(axis=1)) ** 2
    if metric is publication_cosine_distance:
        result = perturber.perturb_population(matrix, rng)
        return np.array(
            [
                cosine_distance(result.published[i], matrix[i])
                for i in range(matrix.shape[0])
            ]
        )
    if metric is publication_jsd:
        result = perturber.perturb_population(matrix, rng)
        return np.array(
            [
                jensen_shannon_divergence(result.published[i], matrix[i])
                for i in range(matrix.shape[0])
            ]
        )
    return None


#: standard metrics by the scan-cell name that executes them; metrics
#: outside this map (custom callables) have no population form the scan
#: engine can run, so the sweep falls back to the scalar loop.
_SWEEP_METRIC_NAMES: "Dict[Metric, str]" = {
    mean_squared_error_of_mean: "mse_mean",
    publication_cosine_distance: "cosine",
    publication_jsd: "jsd",
}


def run_epsilon_sweep(
    stream: Sequence[float],
    algorithms: Iterable[str],
    epsilons: Sequence[float],
    w: int,
    query_length: Optional[int] = None,
    metric: Metric = mean_squared_error_of_mean,
    n_subsequences: int = 50,
    n_repeats: int = 1,
    seed: int = 0,
    engine: str = "vectorized",
) -> SweepResult:
    """Evaluate algorithms across a privacy-budget grid.

    Args:
        stream: the full dataset stream.
        algorithms: registry names to compare.
        epsilons: budget grid (the paper uses 0.5 .. 3.0).
        w: window size.
        query_length: subsequence length ``q`` (defaults to ``w``, the
            paper's Figs. 4-5 protocol).
        metric: per-(algorithm, subsequence) utility functional.
        n_subsequences: how many random subsequences to average over.
        n_repeats: independent perturbation repetitions per subsequence.
        seed: seed for both subsequence sampling and perturbation.
        engine: ``"vectorized"`` (default) executes each
            (algorithm, epsilon) cell as **one** population pass — the
            subsequences (x repetitions) are stacked into a
            ``(n_subsequences * n_repeats, q)`` matrix and perturbed by
            the algorithm's batched engine, a handful of array ops
            instead of thousands of per-user Python loops.
            ``"scalar"`` keeps the per-subsequence reference loop.  The
            two consume randomness differently, so cell values agree
            within sampling tolerance, not bit for bit (tested).
            Metrics without a population form always run scalar.

    Returns:
        A :class:`SweepResult` with one averaged value per
        (algorithm, epsilon).
    """
    if engine not in ("scalar", "vectorized"):
        raise ValueError(
            f"engine must be 'scalar' or 'vectorized', got {engine!r}"
        )
    q = query_length or w
    rng = np.random.default_rng(seed)
    subsequences = sample_subsequences(stream, q, n_subsequences, rng)
    n_repeats = ensure_positive_int(n_repeats, "n_repeats")

    metric_name = _SWEEP_METRIC_NAMES.get(metric)
    if engine == "vectorized" and metric_name is not None:
        # Standard metrics delegate to the scan engine: one sweep cell
        # per (epsilon, algorithm), each with its own spawned seed, so
        # cells are order- and worker-independent (the compatibility
        # contract is pinned by tests/golden/epsilon_sweep.json).
        # Repetitions are extra independent rows of the same subsequence.
        matrix = np.vstack([np.tile(sub, (n_repeats, 1)) for sub in subsequences])
        cells = _sweep_cells(
            algorithms, epsilons, w, metric_name, n_repeats, matrix, seed
        )
        from ..scan.orchestrator import run_cells

        results, _ = run_cells(cells, workers=1)
        values = {name: [] for name in dict.fromkeys(algorithms)}
        for cell in cells:
            values[cell.algorithm].append(results[cell.index].scalars["value"])
        return SweepResult(epsilons=[float(e) for e in epsilons], values=values)

    # Scalar reference loop (and the fallback for metrics without a
    # population form): every cell consumes the one shared generator in
    # grid order, exactly as the original per-user protocol did.
    values = {name: [] for name in algorithms}
    for epsilon in epsilons:
        for name in values:
            scores: "list[float]" = []
            for sub in subsequences:
                perturber = make_algorithm(name, epsilon, w)
                for _ in range(n_repeats):
                    scores.append(metric(perturber, sub, rng))
            values[name].append(float(np.mean(scores)))
    return SweepResult(epsilons=[float(e) for e in epsilons], values=values)


def _sweep_cells(
    algorithms: Iterable[str],
    epsilons: Sequence[float],
    w: int,
    metric_name: str,
    n_repeats: int,
    matrix: np.ndarray,
    seed: int,
) -> "list":
    """One scan sweep cell per (epsilon, algorithm), spawn-seeded.

    Cell ``i`` perturbs with the second stream of
    ``SeedSequence(seed, spawn_key=(i,))`` — the same per-cell spawn
    convention the scan config layer uses, so a sweep embedded in a
    larger scan and a direct :func:`run_epsilon_sweep` call agree.
    """
    from ..scan import ScanCell

    cells = []
    names = list(dict.fromkeys(algorithms))
    for epsilon in epsilons:
        for name in names:
            index = len(cells)
            protocol_seed = int(
                np.random.SeedSequence(
                    int(seed), spawn_key=(index,)
                ).generate_state(2)[1]
            )
            cells.append(
                ScanCell(
                    index=index,
                    kind="sweep",
                    algorithm=name,
                    epsilon=float(epsilon),
                    w=int(w),
                    data_seed=int(seed),
                    protocol_seed=protocol_seed,
                    metric=metric_name,
                    n_repeats=int(n_repeats),
                    matrix=matrix,
                )
            )
    return cells


def run_scenario_study(
    scenarios: Iterable[str] = ("steady", "diurnal", "bursty", "churn", "drift"),
    algorithms: Iterable[str] = ("capp", "app", "ipp", "sw-direct"),
    n_users: int = 2_000,
    horizon: int = 96,
    epsilon: float = 1.0,
    w: int = 10,
    n_shards: int = 1,
    max_workers: Optional[int] = None,
    seed: int = 0,
) -> "Dict[str, Dict[str, float]]":
    """Population-mean MSE of each algorithm under each scenario workload.

    Widens the evaluated workload set beyond the paper's datasets: every
    scenario (diurnal cycles, bursts, churn waves, drift — see
    :data:`repro.runtime.scenarios.SCENARIOS`) is synthesized chunk by
    chunk and executed through the sharded runtime, so the study scales
    to populations that never fit in one process's memory.

    Args:
        scenarios: preset names from the scenario registry.
        algorithms: online algorithm names to compare.
        n_users, horizon: population shape per scenario.
        epsilon, w: w-event privacy parameters.
        n_shards: user-shards per run (chunk size is ``n_users / n_shards``).
        max_workers: worker processes (default: ``n_shards``, serial if 1).
        seed: scenario-data and protocol randomness root seed.

    Returns:
        ``{scenario: {algorithm: population-mean MSE}}``.
    """
    from ..scan import ScanCell
    from ..scan.orchestrator import run_cells

    n_shards = ensure_positive_int(n_shards, "n_shards")
    n_users = ensure_positive_int(n_users, "n_users")
    scenario_names = list(dict.fromkeys(scenarios))
    algorithm_names = list(dict.fromkeys(algorithms))
    # The historical (data, protocol) = (seed, seed + 1) convention —
    # the scan config layer's "shared" seed mode — shared by every cell,
    # so this wrapper is bit-identical to the pre-scan per-run loop
    # (pinned by tests/golden/scenario_study.json).
    cells = [
        ScanCell(
            index=index,
            kind="scenario",
            algorithm=name,
            epsilon=float(epsilon),
            w=int(w),
            data_seed=int(seed),
            protocol_seed=int(seed) + 1,
            scenario=scenario,
            n_users=n_users,
            horizon=int(horizon),
            n_shards=n_shards,
            engine="sharded",
        )
        for index, (scenario, name) in enumerate(
            (scenario, name)
            for scenario in scenario_names
            for name in algorithm_names
        )
    ]
    workers = n_shards if max_workers is None else max_workers
    cell_results, _ = run_cells(cells, workers=workers)
    results: Dict[str, Dict[str, float]] = {
        scenario: {} for scenario in scenario_names
    }
    for cell in cells:
        results[cell.scenario][cell.algorithm] = cell_results[
            cell.index
        ].scalars["mse"]
    return results


def run_live_study(
    scenarios: Iterable[str] = ("steady", "diurnal", "bursty", "churn", "drift"),
    algorithm: str = "capp",
    n_users: int = 2_000,
    horizon: int = 96,
    epsilon: float = 1.0,
    w: int = 10,
    n_shards: int = 2,
    max_workers: Optional[int] = None,
    alert_window: int = 5,
    alert_threshold: float = 0.52,
    queue_capacity: int = 256,
    coalesce: int = 8,
    seed: int = 0,
) -> "Dict[str, Dict[str, float]]":
    """Serve each scenario live and cross-check against the offline runtime.

    Every scenario workload is streamed through the live ingestion
    pipeline (:mod:`repro.service`) with a standing dashboard (rolling
    mean, extrema, trend, threshold alert) and, in parallel with the
    serving metrics, re-executed through the offline sharded runtime to
    verify the two paths agree bit-for-bit — the live pipeline is an
    execution mode of the same protocol, not a different estimator.

    Args:
        scenarios: preset names from the scenario registry.
        algorithm: online algorithm every user runs.
        n_users, horizon: population shape per scenario.
        epsilon, w: w-event privacy parameters.
        n_shards: user-shards (and live producer feeds) per run.
        max_workers: producer threads (default: ``n_shards``).
        alert_window, alert_threshold: the dashboard's rolling window and
            threshold-alert configuration (fires when the rolling mean
            crosses it).
        queue_capacity, coalesce: live-pipeline admission control (see
            :class:`~repro.service.BoundedBatchQueue`).
        seed: scenario-data and protocol randomness root seed.

    Returns:
        ``{scenario: {"mse", "reports_per_sec", "p99_latency_ms",
        "alerts_fired", "bit_identical"}}`` — ``bit_identical`` is 1.0
        when the live and offline estimate series match exactly.
    """
    from ..analysis.streaming_queries import standard_dashboard
    from ..runtime import ScenarioSource, make_scenario, run_protocol_sharded
    from ..service import run_live

    n_shards = ensure_positive_int(n_shards, "n_shards")
    n_users = ensure_positive_int(n_users, "n_users")
    chunk = -(-n_users // n_shards)  # ceil division
    results: Dict[str, Dict[str, float]] = {}
    for scenario in scenarios:
        spec = make_scenario(scenario, n_users=n_users, horizon=horizon)
        source = ScenarioSource(spec, chunk_size=chunk, seed=seed)

        dashboard = standard_dashboard(alert_window, alert_threshold)

        live = run_live(
            source,
            algorithm=algorithm,
            epsilon=epsilon,
            w=w,
            seed=seed + 1,
            max_workers=n_shards if max_workers is None else max_workers,
            queue_capacity=queue_capacity,
            coalesce=coalesce,
            dashboards={"study": dashboard},
        )
        offline = run_protocol_sharded(
            source, algorithm=algorithm, epsilon=epsilon, w=w, seed=seed + 1
        )
        matches = bool(
            np.array_equal(
                live.population_mean_series(),
                offline.collector.population_mean_series(),
            )
        )
        alert = dashboard.query("alert")
        results[scenario] = {
            "mse": offline.population_mean_mse(),
            "reports_per_sec": live.reports_per_second,
            "p99_latency_ms": live.latency_quantile(0.99) * 1e3,
            "alerts_fired": float(alert.fired_count),
            "bit_identical": 1.0 if matches else 0.0,
        }
    return results
