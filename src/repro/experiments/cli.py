"""Command-line interface for regenerating the paper's experiments.

Usage::

    python -m repro table1
    python -m repro fig4 --datasets c6h6 volume --windows 10 30 --scale 0.5
    python -m repro fig11 --scale 0.25
    python -m repro scenarios --shards 4 --scale 0.5
    python -m repro live --shards 2 --scale 0.5
    python -m repro serve-replay --datasets bursty --shards 2 \
        --sink events.jsonl --record-batches
    python -m repro gateway-serve --datasets bursty --shards 4 --verify
    python -m repro gateway-serve --standalone --port 7070   # then, elsewhere:
    python -m repro gateway-fleet --connect 127.0.0.1:7070
    python -m repro gateway-serve --wal waldir --shards 4    # durable serving
    python -m repro wal-compact --wal waldir
    python -m repro scan grid.toml --workers 4 --store results/
    python -m repro scan grid.toml --store results/ --resume
    python -m repro scan-report results/
    python -m repro list

``--scale`` multiplies the default subsequence/repeat counts, letting a
laptop trade accuracy for speed (1.0 reproduces the bench defaults).

``serve-replay`` streams a scenario workload through the live ingestion
pipeline (:mod:`repro.service`) with a standing dashboard, optionally
writing every event to a JSONL sink; with ``--record-batches`` the sink
is a complete replayable capture of the run.

``gateway-serve`` serves the same workloads over real TCP through
:mod:`repro.gateway` — by default with an in-process client fleet over
loopback; with ``--standalone`` it waits for an external fleet started
via ``gateway-fleet``.  Both sides derive the shard decomposition from
the same scenario arguments, so gateway-served estimates are
bit-identical to the offline sharded run (``--verify`` checks).

``scan`` expands a declarative TOML/YAML grid (:mod:`repro.scan`) into
cells, fans them out over worker processes, and lands every result in a
resumable columnar store; ``scan-report`` summarizes a store, and
``scan --bench`` regenerates the ``BENCH_population.json`` estimator
matrix through the same machinery.  See ``docs/scan.md``.

``--wal DIR`` makes the serve durable (:mod:`repro.wal`): a fresh
directory starts a logged run, and a directory holding an interrupted
run's log triggers crash recovery — the server replays the WAL, then
listens for the fleet to resume.  ``wal-compact`` folds a log into a
checkpoint snapshot (``--dry-run`` only verifies it); the operator
procedures live in ``docs/operations.md``.

Unknown dataset/algorithm/scenario names exit with status 2 and a
one-line message carrying the registries' close-match suggestions.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from .figures import (
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
)
from .reporting import format_sweep, format_table
from .table1 import format_table1, run_table1

__all__ = ["main", "EXPERIMENTS", "CLIError"]


class CLIError(Exception):
    """A usage error that should exit with a one-line message, not a trace."""


def _scaled(base: int, scale: float) -> int:
    return max(int(round(base * scale)), 1)


def _run_table1(args: argparse.Namespace) -> str:
    result = run_table1(
        windows=tuple(args.windows or (20, 40, 60)),
        datasets=tuple(args.datasets or ("c6h6", "taxi")),
        n_subsequences=_scaled(15, args.scale),
        stream_length=_scaled(800, args.scale),
        seed=args.seed,
        engine=args.engine,
    )
    return format_table1(result)


def _format_algorithms() -> str:
    """The estimator catalogue with per-name capability flags."""
    from ..registry import ALGORITHMS, capability_matrix

    matrix = capability_matrix()
    columns = ["scalar", "batch", "sharded", "live", "participation", "kernels"]
    rows = []
    for name in sorted(matrix):
        flags = matrix[name]
        cells = ["yes" if flags[c] else "no" for c in columns]
        rows.append([name] + cells + [ALGORITHMS[name].description])
    return format_table(
        ["algorithm"] + columns + ["description"],
        rows,
        title="Registered estimators (see repro.registry)",
    )


def _run_fig_grid(runner: Callable, title: str) -> Callable[[argparse.Namespace], str]:
    def _run(args: argparse.Namespace) -> str:
        kwargs = dict(
            epsilons=tuple(args.epsilons or (0.5, 1.0, 2.0, 3.0)),
            n_subsequences=_scaled(20, args.scale),
            n_repeats=max(int(round(2 * args.scale)), 1),
            stream_length=_scaled(800, args.scale),
            seed=args.seed,
            engine=args.engine,
        )
        if args.datasets:
            kwargs["datasets"] = tuple(args.datasets)
        if args.windows:
            kwargs["windows"] = tuple(args.windows)
        result = runner(**kwargs)
        blocks = []
        for dataset, per_w in result.items():
            for w, series in per_w.items():
                blocks.append(
                    format_sweep(
                        list(kwargs["epsilons"]),
                        series,
                        title=f"{title} {dataset} w={w}",
                    )
                )
        return "\n\n".join(blocks)

    return _run


def _run_fig6_like(runner: Callable, title: str) -> Callable[[argparse.Namespace], str]:
    def _run(args: argparse.Namespace) -> str:
        epsilons = tuple(args.epsilons or (0.5, 1.0, 2.0, 3.0))
        result = runner(
            epsilons=epsilons,
            n_subsequences=_scaled(20, args.scale),
            n_repeats=max(int(round(2 * args.scale)), 1),
            stream_length=_scaled(800, args.scale),
            seed=args.seed,
            engine=args.engine,
        )
        blocks = [
            format_sweep(list(epsilons), series, title=f"{title} {key}")
            for key, series in result.items()
        ]
        return "\n\n".join(blocks)

    return _run


def _run_fig8(args: argparse.Namespace) -> str:
    epsilons = tuple(args.epsilons or (0.5, 1.0, 2.0, 3.0))
    result = run_fig8(
        epsilons=epsilons,
        n_users=_scaled(120, args.scale),
        n_repeats=max(int(round(3 * args.scale)), 1),
        seed=args.seed,
    )
    return "\n\n".join(
        format_sweep(list(epsilons), series, title=f"Fig.8 {key}")
        for key, series in result.items()
    )


def _run_fig9(args: argparse.Namespace) -> str:
    epsilons = tuple(args.epsilons or (0.5, 1.0, 2.0, 3.0))
    result = run_fig9(
        datasets=tuple(args.datasets or ("c6h6", "volume")),
        epsilons=epsilons,
        n_subsequences=_scaled(20, args.scale),
        stream_length=_scaled(800, args.scale),
        seed=args.seed,
        engine=args.engine,
    )
    blocks = []
    for dataset, metrics in result.items():
        for metric, series in metrics.items():
            blocks.append(
                format_sweep(list(epsilons), series, title=f"Fig.9 {dataset} ({metric})")
            )
    return "\n\n".join(blocks)


def _run_fig10(args: argparse.Namespace) -> str:
    epsilons = tuple(args.epsilons or (0.5, 1.0, 2.0, 3.0))
    result = run_fig10(
        epsilons=epsilons,
        length=_scaled(150, args.scale),
        n_repeats=max(int(round(4 * args.scale)), 1),
        seed=args.seed,
    )
    blocks = []
    for d, metrics in result.items():
        for metric, series in metrics.items():
            blocks.append(
                format_sweep(list(epsilons), series, title=f"Fig.10 d={d} ({metric})")
            )
    return "\n\n".join(blocks)


def _run_fig11(args: argparse.Namespace) -> str:
    import numpy as np

    deltas = tuple(np.round(np.arange(-0.45, 0.51, 0.15), 2))
    epsilons = tuple(args.epsilons or (0.5, 1.0, 3.0, 5.0))
    result = run_fig11(
        datasets=tuple(args.datasets or ("constant", "pulse", "sinusoidal", "c6h6")),
        epsilons=epsilons,
        deltas=deltas,
        n_subsequences=_scaled(15, args.scale),
        stream_length=_scaled(400, args.scale),
        seed=args.seed,
    )
    blocks = []
    for dataset, per_eps in result.items():
        headers = ["eps"] + [f"d={d:g}" for d in deltas]
        rows = [[f"{eps:g}"] + list(series) for eps, series in per_eps.items()]
        blocks.append(format_table(headers, rows, title=f"Fig.11 {dataset}"))
    return "\n\n".join(blocks)


def _run_models(args: argparse.Namespace) -> str:
    import numpy as np

    from ..datasets import load_stream
    from .models_study import run_models_study

    stream = load_stream((args.datasets or ["c6h6"])[0], length=_scaled(400, args.scale))
    horizon = min(stream.size, 60)
    study = run_models_study(
        stream[:horizon],
        epsilon=(args.epsilons or [1.0])[0],
        w=(args.windows or [10])[0],
        n_repeats=_scaled(10, args.scale),
        rng=np.random.default_rng(args.seed),
    )
    rows = [
        [name, m["per_slot"], int(m["protected_span"]), m["mean_mse"], m["cosine"]]
        for name, m in study.items()
    ]
    return format_table(
        ["model", "eps/slot", "protected span", "mean MSE", "cosine"],
        rows,
        title="Privacy models: utility vs protection",
    )


def _run_distribution(args: argparse.Namespace) -> str:
    import numpy as np

    from .distribution_study import run_distribution_study

    epsilons = tuple(args.epsilons or (0.1, 0.5, 1.0, 2.0))
    study = run_distribution_study(
        epsilons=epsilons,
        n_users=_scaled(4_000, args.scale),
        rng=np.random.default_rng(args.seed),
    )
    rows = [[shape] + [per_eps[e] for e in epsilons] for shape, per_eps in study.items()]
    return format_table(
        ["population"] + [f"eps={e:g}" for e in epsilons],
        rows,
        title="Per-slot EM distribution reconstruction (Wasserstein)",
    )


def _run_scenarios(args: argparse.Namespace) -> str:
    from ..runtime.scenarios import SCENARIOS
    from .runner import run_scenario_study

    scenarios = tuple(args.datasets or sorted(SCENARIOS))
    algorithms = ("capp", "app", "ipp", "sw-direct")
    study = run_scenario_study(
        scenarios=scenarios,
        algorithms=algorithms,
        n_users=_scaled(2_000, args.scale),
        horizon=_scaled(96, args.scale),
        epsilon=(args.epsilons or [1.0])[0],
        w=(args.windows or [10])[0],
        n_shards=max(args.shards, 1),
        seed=args.seed,
    )
    rows = [
        [scenario] + [study[scenario][name] for name in algorithms]
        for scenario in scenarios
    ]
    title = "Scenario workloads: population-mean MSE"
    if args.shards > 1:
        title += f" ({args.shards} shards)"
    return format_table(["scenario"] + list(algorithms), rows, title=title)


def _run_adversary(args: argparse.Namespace) -> str:
    from ..adversary import ATTACK_STRATEGIES, POLICIES, run_adversarial_study

    scenarios = tuple(args.datasets or ("steady",))
    strategies = tuple(args.strategies or ATTACK_STRATEGIES)
    policies = tuple(args.policies or POLICIES)
    study = run_adversarial_study(
        scenarios=scenarios,
        algorithms=(args.algorithm,),
        strategies=strategies,
        policies=policies,
        attack_fraction=args.attack_fraction,
        n_users=_scaled(2_000, args.scale),
        horizon=_scaled(48, args.scale),
        epsilon=(args.epsilons or [1.0])[0],
        w=(args.windows or [10])[0],
        n_shards=max(args.shards, 1),
        max_workers=args.workers,
        seed=args.seed,
    )
    blocks = []
    for scenario in scenarios:
        per_strategy = study[scenario][args.algorithm]
        rows = [
            [strategy]
            + [per_strategy[strategy][policy]["manipulation_gain"] for policy in policies]
            for strategy in strategies
        ]
        blocks.append(
            format_table(
                ["attack \\ defense"] + list(policies),
                rows,
                title=(
                    f"Manipulation gain — scenario {scenario!r}, "
                    f"{args.attack_fraction:.0%} compromised, "
                    f"algorithm {args.algorithm}"
                ),
            )
        )
    return "\n\n".join(blocks)


def _run_live(args: argparse.Namespace) -> str:
    from ..runtime.scenarios import SCENARIOS
    from .runner import run_live_study

    if args.sink or args.record_batches:
        print(
            "note: --sink/--record-batches apply to serve-replay only; "
            "the live study runs without an event log",
            file=sys.stderr,
        )
    scenarios = tuple(args.datasets or sorted(SCENARIOS))
    study = run_live_study(
        scenarios=scenarios,
        n_users=_scaled(2_000, args.scale),
        horizon=_scaled(96, args.scale),
        epsilon=(args.epsilons or [1.0])[0],
        w=(args.windows or [10])[0],
        n_shards=max(args.shards, 1),
        alert_window=args.dashboard_window,
        alert_threshold=args.alert_threshold,
        queue_capacity=args.queue_capacity,
        coalesce=args.coalesce,
        seed=args.seed,
    )
    columns = [
        "mse",
        "reports_per_sec",
        "p99_latency_ms",
        "alerts_fired",
        "bit_identical",
    ]
    rows = [
        [scenario] + [study[scenario][column] for column in columns]
        for scenario in scenarios
    ]
    return format_table(
        ["scenario", "MSE", "reports/s", "p99 ms", "alerts", "bit-identical"],
        rows,
        title="Live serving study (live pipeline vs offline runtime)",
    )


def _run_serve_replay(args: argparse.Namespace) -> str:
    from ..analysis.streaming_queries import standard_dashboard
    from ..runtime import scenario_source
    from ..service import JSONLSink, run_live

    scenario = (args.datasets or ["diurnal"])[0]
    n_users = _scaled(2_000, args.scale)
    horizon = _scaled(96, args.scale)
    n_shards = max(args.shards, 1)
    window = args.dashboard_window

    source = scenario_source(
        scenario, n_users=n_users, horizon=horizon, n_shards=n_shards, seed=args.seed
    )

    dashboard = standard_dashboard(window, args.alert_threshold)

    sinks = [JSONLSink(args.sink)] if args.sink else []
    result = run_live(
        source,
        algorithm="capp",
        epsilon=(args.epsilons or [1.0])[0],
        w=(args.windows or [10])[0],
        seed=args.seed + 1,
        max_workers=n_shards,
        queue_capacity=args.queue_capacity,
        coalesce=args.coalesce,
        sinks=sinks,
        dashboards={"dashboard": dashboard},
        record_batches=args.record_batches,
    )

    alert = dashboard.query("alert")
    rows = [
        ["scenario", scenario],
        ["users x slots", f"{n_users} x {horizon}"],
        ["shards (producers)", n_shards],
        ["reports ingested", result.n_reports],
        ["reports/s sustained", f"{result.reports_per_second:.0f}"],
        ["p99 slot latency", f"{result.latency_quantile(0.99) * 1e3:.3f} ms"],
        ["alerts fired", alert.fired_count],
        ["final rolling mean", dashboard.answers()["rolling_mean"]],
    ]
    if result.queue_stats is not None:
        rows.append(["backpressure waits", result.queue_stats.producer_waits])
        rows.append(["mean coalesced drain", f"{result.queue_stats.mean_drain:.2f}"])
    if args.sink:
        rows.append(["event log", args.sink])
    return format_table(["metric", "value"], rows, title="Live serve-replay")


def _gateway_workload(args):
    """Scenario source + protocol parameters shared by serve and fleet.

    Both gateway commands rebuild the workload from the same arguments,
    which is what lets a separately launched fleet produce exactly the
    reports the server-side verification expects.
    """
    from ..runtime import scenario_source

    scenario = (args.datasets or ["bursty"])[0]
    n_users = _scaled(2_000, args.scale)
    horizon = _scaled(96, args.scale)
    n_shards = max(args.shards, 1)
    source = scenario_source(
        scenario, n_users=n_users, horizon=horizon, n_shards=n_shards, seed=args.seed
    )
    protocol = dict(
        algorithm=args.algorithm,
        epsilon=(args.epsilons or [1.0])[0],
        w=(args.windows or [10])[0],
        seed=args.seed + 1,
    )
    return scenario, source, n_shards, protocol


def _worker_scenario_source(scenario, n_users, horizon, n_shards, seed):
    """Rebuild the workload source inside a worker process.

    Top-level so :func:`functools.partial` over it pickles under any
    multiprocessing start method (spawn included).
    """
    from ..runtime import scenario_source

    return scenario_source(
        scenario, n_users=n_users, horizon=horizon, n_shards=n_shards, seed=seed
    )


def _distributed_source_factory(args: argparse.Namespace):
    """The picklable ``make_source`` for process-per-worker serving."""
    import functools

    return functools.partial(
        _worker_scenario_source,
        (args.datasets or ["bursty"])[0],
        _scaled(2_000, args.scale),
        _scaled(96, args.scale),
        max(args.shards, 1),
        args.seed,
    )


def _parse_hostport(text: str, flag: str) -> Tuple[str, int]:
    host, _, port_text = text.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise CLIError(f"{flag} must be HOST:PORT, got {text!r}") from None
    return host or "127.0.0.1", port


def _write_metrics_json(path: str, payload: Dict) -> None:
    import json

    from ..service.events import jsonify

    with open(path, "w") as fh:
        json.dump(jsonify(payload), fh, indent=2, sort_keys=True)
        fh.write("\n")


def _run_gateway_serve(args: argparse.Namespace) -> str:
    from ..gateway import run_gateway
    from ..runtime import run_protocol_sharded

    workers = max(args.workers, 1)
    if args.connect_root:
        return _serve_distributed_workers(args)
    if workers > 1:
        if args.standalone:
            raise CLIError(
                "--standalone hosts one in-process gateway; for multi-worker "
                "serving start gateway-root and attach gateway-serve "
                "--connect-root HOST:PORT --workers N"
            )
        if args.wal:
            raise CLIError(
                "--wal is per-worker state that gateway-serve --workers N "
                "does not manage; drill durability on a single worker "
                "(--workers 1 --wal DIR)"
            )
        return _serve_distributed(args)

    if args.wal:
        from ..wal import WriteAheadLog

        if WriteAheadLog.exists(args.wal):
            # The directory holds an interrupted run: recover and resume
            # instead of starting a new one.
            return _serve_recovered(args)

    scenario, source, n_shards, protocol = _gateway_workload(args)
    if args.standalone:
        return _serve_standalone(args, scenario, source, n_shards, protocol)

    try:
        run = run_gateway(
            source,
            host=args.host,
            port=args.port,
            jitter=args.jitter,
            wal_dir=args.wal,
            fsync=args.fsync,
            **protocol,
        )
    except (ConnectionError, TimeoutError, OSError) as error:
        raise CLIError(f"gateway serve failed: {error}") from error
    snapshot = run.metrics.snapshot()
    bit_identical = None
    if args.verify:
        offline = run_protocol_sharded(source, **protocol)
        bit_identical = bool(
            run.result.collector.state.slot_sums == offline.collector.state.slot_sums
            and run.result.collector.state.slot_counts
            == offline.collector.state.slot_counts
        )

    rows = [
        ["scenario", scenario],
        ["shards (connections)", n_shards],
        ["algorithm", protocol["algorithm"]],
        ["reports ingested", run.result.n_reports],
        ["reports/s sustained", f"{snapshot['reports_per_second']:.0f}"],
        ["p50 slot latency", f"{snapshot['p50_slot_latency_seconds'] * 1e3:.3f} ms"],
        ["p99 slot latency", f"{snapshot['p99_slot_latency_seconds'] * 1e3:.3f} ms"],
        ["bytes received", snapshot["bytes_received"]],
        ["duplicates / sheds", f"{snapshot['duplicates']} / {snapshot['sheds']}"],
        ["reconnects", sum(r.reconnects for r in run.shard_reports)],
    ]
    if args.wal:
        rows.append(["write-ahead log", f"{args.wal} (fsync={args.fsync})"])
    if bit_identical is not None:
        rows.append(["bit-identical to sharded run", "yes" if bit_identical else "NO"])
    if args.metrics_out:
        _write_metrics_json(
            args.metrics_out,
            {
                "scenario": scenario,
                "n_shards": n_shards,
                "algorithm": protocol["algorithm"],
                "bit_identical": bit_identical,
                "gateway": snapshot,
                "shards": [
                    {
                        "shard": r.shard,
                        "uploaded": r.uploaded,
                        "duplicates": r.duplicates,
                        "skipped": r.skipped,
                        "reconnects": r.reconnects,
                    }
                    for r in run.shard_reports
                ],
            },
        )
        rows.append(["metrics json", args.metrics_out])
    if bit_identical is False:
        raise CLIError(
            "gateway-served estimates diverged from the offline sharded run"
        )
    return format_table(["metric", "value"], rows, title="Gateway serve (loopback fleet)")


def _serve_standalone(args, scenario, source, n_shards, protocol) -> str:
    """Listen on --port and wait for an external gateway-fleet."""
    import asyncio

    from ..gateway import GatewayServer
    from ..service import IngestionPipeline

    pipeline = IngestionPipeline(
        n_shards=n_shards,
        horizon=source.horizon,
        epsilon=protocol["epsilon"],
        w=protocol["w"],
    )
    wal = None
    if args.wal:
        from ..wal import WriteAheadLog

        wal = pipeline.attach_wal(WriteAheadLog(args.wal, fsync=args.fsync))

    async def _serve():
        server = GatewayServer(pipeline, host=args.host, port=args.port)
        await server.start(metadata={"algorithm": protocol["algorithm"]})
        print(
            f"gateway listening on {args.host}:{server.port} — upload with\n"
            f"  python -m repro gateway-fleet --connect {args.host}:{server.port} "
            f"--datasets {scenario} --shards {n_shards} --scale {args.scale:g} "
            f"--seed {args.seed}",
            file=sys.stderr,
        )
        try:
            await server.wait_complete(timeout=args.serve_timeout or None)
        finally:
            await server.stop()
        # Build the result while the WAL is still open — build_result
        # appends the RUN_END record, so it must precede wal.close().
        return server.metrics.snapshot(), server.result()

    try:
        snapshot, result = asyncio.run(_serve())
    except (TimeoutError, asyncio.TimeoutError) as error:
        raise CLIError(
            f"no fleet completed the run within --serve-timeout "
            f"{args.serve_timeout:g}s"
        ) from error
    except OSError as error:  # bind failure (port in use, bad host)
        raise CLIError(f"cannot listen on {args.host}:{args.port}: {error}") from error
    finally:
        if wal is not None:
            wal.close()
    rows = [
        ["scenario", scenario],
        ["reports ingested", result.n_reports],
        ["reports/s sustained", f"{snapshot['reports_per_second']:.0f}"],
        ["p99 slot latency", f"{snapshot['p99_slot_latency_seconds'] * 1e3:.3f} ms"],
        ["connections served", snapshot["connections_opened"]],
    ]
    if args.wal:
        rows.append(["write-ahead log", f"{args.wal} (fsync={args.fsync})"])
    if args.metrics_out:
        _write_metrics_json(args.metrics_out, {"scenario": scenario, "gateway": snapshot})
        rows.append(["metrics json", args.metrics_out])
    return format_table(["metric", "value"], rows, title="Gateway serve (standalone)")


def _serve_recovered(args: argparse.Namespace) -> str:
    """Recover an interrupted run from its WAL, then resume serving.

    The run configuration comes from the log itself (``RUN_START`` or
    the latest checkpoint), not from the command line — restart the
    fleet with the *same* ``gateway-fleet`` arguments as before and its
    clients will resume from the recovered per-shard slots.
    """
    import asyncio

    from ..gateway import GatewayServer
    from ..wal import WalCorruptionError, WriteAheadLog, recover_pipeline

    try:
        recovery = recover_pipeline(args.wal)
    except WalCorruptionError as error:
        raise CLIError(f"write-ahead log is damaged: {error}") from error
    pipeline = recovery.pipeline
    summary = recovery.summary()
    rows = [[key, summary[key]] for key in sorted(summary)]
    if recovery.run_ended or pipeline.complete:
        rows.append(["status", "run already complete; nothing to serve"])
        return format_table(
            ["metric", "value"], rows, title="Gateway serve (recovered)"
        )
    wal = pipeline.attach_wal(WriteAheadLog(args.wal, fsync=args.fsync))

    async def _serve():
        server = GatewayServer(
            pipeline,
            host=args.host,
            port=args.port,
            next_expected=recovery.next_expected,
        )
        await server.start(metadata=recovery.metadata)
        print(
            f"recovered run at slot {pipeline.next_slot}/{pipeline.horizon}; "
            f"listening on {args.host}:{server.port} — restart the fleet "
            f"with its original gateway-fleet arguments to resume",
            file=sys.stderr,
        )
        try:
            await server.wait_complete(timeout=args.serve_timeout or None)
        finally:
            await server.stop()
        # Build the result while the WAL is still open — build_result
        # appends the RUN_END record, so it must precede wal.close().
        return server.metrics.snapshot(), server.result()

    try:
        snapshot, result = asyncio.run(_serve())
    except (TimeoutError, asyncio.TimeoutError) as error:
        raise CLIError(
            f"no fleet completed the run within --serve-timeout "
            f"{args.serve_timeout:g}s"
        ) from error
    except OSError as error:
        raise CLIError(f"cannot listen on {args.host}:{args.port}: {error}") from error
    finally:
        wal.close()
    rows += [
        ["reports ingested (total)", result.n_reports],
        ["batches accepted after restart", snapshot["batches_accepted"]],
        ["connections served", snapshot["connections_opened"]],
        ["write-ahead log", f"{args.wal} (fsync={args.fsync})"],
    ]
    if args.metrics_out:
        _write_metrics_json(
            args.metrics_out,
            {"recovery": summary, "gateway": snapshot},
        )
        rows.append(["metrics json", args.metrics_out])
    return format_table(["metric", "value"], rows, title="Gateway serve (recovered)")


def _serve_distributed(args: argparse.Namespace) -> str:
    """Root aggregator plus N worker processes, all driven in-process.

    One OS process per worker, each serving its contiguous shard range
    behind its own listener and streaming finalized shard states to the
    root over loopback TCP — the single-command version of the
    ``gateway-root`` + ``--connect-root`` two-command deployment.
    """
    from ..gateway import GatewayError, run_distributed_processes
    from ..runtime import run_protocol_sharded

    scenario, source, n_shards, protocol = _gateway_workload(args)
    workers = max(args.workers, 1)
    if workers > n_shards:
        raise CLIError(
            f"--workers {workers} exceeds the {n_shards} shard(s); "
            "each worker needs at least one contiguous shard (raise --shards)"
        )
    try:
        run = run_distributed_processes(
            _distributed_source_factory(args),
            n_shards=n_shards,
            workers=workers,
            host=args.host,
            root_port=args.port,
            complete_timeout=args.serve_timeout or 300.0,
            **protocol,
        )
    except (ConnectionError, TimeoutError, OSError, GatewayError, RuntimeError) as error:
        raise CLIError(f"distributed gateway serve failed: {error}") from error
    snapshot = run.metrics.snapshot()
    totals = run.metrics_payload()["totals"]
    bit_identical = None
    if args.verify:
        offline = run_protocol_sharded(source, **protocol)
        bit_identical = bool(
            run.result.collector.state.slot_sums == offline.collector.state.slot_sums
            and run.result.collector.state.slot_counts
            == offline.collector.state.slot_counts
        )
    rows = [
        ["scenario", scenario],
        ["workers (processes)", workers],
        ["shards (connections)", n_shards],
        ["algorithm", protocol["algorithm"]],
        ["reports ingested", run.result.n_reports],
        ["workers reports/s (aggregate)", f"{totals['reports_per_second']:.0f}"],
        [
            "worst worker p99 slot latency",
            f"{totals['worst_p99_slot_latency_seconds'] * 1e3:.3f} ms",
        ],
        ["root bytes received", snapshot["bytes_received"]],
        ["root duplicates", snapshot["duplicates"]],
        ["reconnects", sum(r.reconnects for r in run.shard_reports)],
    ]
    if bit_identical is not None:
        rows.append(["bit-identical to sharded run", "yes" if bit_identical else "NO"])
    if args.metrics_out:
        payload = run.metrics_payload()
        payload.update(
            {
                "scenario": scenario,
                "n_shards": n_shards,
                "n_workers": workers,
                "algorithm": protocol["algorithm"],
                "bit_identical": bit_identical,
                "shards": [
                    {
                        "shard": r.shard,
                        "uploaded": r.uploaded,
                        "duplicates": r.duplicates,
                        "skipped": r.skipped,
                        "reconnects": r.reconnects,
                    }
                    for r in run.shard_reports
                ],
            }
        )
        _write_metrics_json(args.metrics_out, payload)
        rows.append(["metrics json", args.metrics_out])
    if bit_identical is False:
        raise CLIError(
            "distributed estimates diverged from the offline sharded run"
        )
    return format_table(
        ["metric", "value"], rows, title="Gateway serve (distributed tree)"
    )


def _serve_distributed_workers(args: argparse.Namespace) -> str:
    """Host worker processes that attach to an external gateway-root."""
    import multiprocessing

    from ..gateway.distributed import _worker_process_main, shard_ranges

    if args.standalone:
        raise CLIError("--connect-root and --standalone are mutually exclusive")
    if args.wal:
        raise CLIError(
            "--wal is per-worker state that gateway-serve --connect-root "
            "does not manage; drill durability on a single worker "
            "(--workers 1 --wal DIR)"
        )
    root_host, root_port = _parse_hostport(args.connect_root, "--connect-root")
    scenario, source, n_shards, protocol = _gateway_workload(args)
    workers = max(args.workers, 1)
    if workers > n_shards:
        raise CLIError(
            f"--workers {workers} exceeds the {n_shards} shard(s); "
            "each worker needs at least one contiguous shard (raise --shards)"
        )
    make_source = _distributed_source_factory(args)
    timeout = args.serve_timeout or 300.0
    ctx = multiprocessing.get_context()
    queue = ctx.Queue()
    procs = []
    for i, (lo, hi) in enumerate(shard_ranges(n_shards, workers)):
        cfg = {
            "worker": i,
            "shard_lo": lo,
            "shard_hi": hi,
            "algorithm": protocol["algorithm"],
            "epsilon": protocol["epsilon"],
            "w": protocol["w"],
            "smoothing_window": 3,
            "participation": None,
            "seed": protocol["seed"],
            "chunk_size": None,
            "track_users": False,
            "keep_reports": True,
            "host": "127.0.0.1",
            "root_host": root_host,
            "root_port": root_port,
            "max_slot_skew": 8,
            "retry_after": 0.02,
            "complete_timeout": timeout,
        }
        proc = ctx.Process(
            target=_worker_process_main, args=(make_source, cfg, queue), daemon=True
        )
        proc.start()
        procs.append(proc)
    for proc in procs:
        proc.join(timeout + 30.0)
    summaries = []
    while True:
        try:
            summaries.append(queue.get_nowait())
        except Exception:
            break
    stuck = [p for p in procs if p.is_alive()]
    for proc in stuck:
        proc.terminate()
    failed = [s for s in summaries if not s.get("ok")]
    if failed:
        raise CLIError(
            "worker process failed: "
            + "; ".join(f"worker {s.get('worker')}: {s.get('error')}" for s in failed)
        )
    if stuck or len(summaries) < workers:
        raise CLIError(
            f"worker processes did not finish within {timeout:g}s — is "
            f"gateway-root listening at {args.connect_root}?"
        )
    rows = [
        [fields["shard"], fields["uploaded"], fields["duplicates"],
         fields["skipped"], fields["reconnects"]]
        for summary in sorted(summaries, key=lambda s: s["worker"])
        for fields in summary.get("reports", ())
    ]
    rows.sort(key=lambda r: r[0])
    return format_table(
        ["shard", "uploaded", "duplicates", "skipped", "reconnects"],
        rows,
        title=f"Gateway workers: {scenario} ({workers} procs) -> {args.connect_root}",
    )


def _run_gateway_root(args: argparse.Namespace) -> str:
    """Serve the root of the aggregation tree and wait for workers."""
    import asyncio

    from ..gateway import (
        RootAggregator,
        ShardStateAggregator,
        aggregate_worker_metrics,
        gateway_run,
    )
    from ..runtime import run_protocol_sharded

    scenario, source, n_shards, protocol = _gateway_workload(args)
    workers = max(args.workers, 1)

    async def _serve():
        aggregator = ShardStateAggregator(
            n_shards,
            int(source.horizon),
            epsilon=protocol["epsilon"],
            w=protocol["w"],
        )
        root = RootAggregator(aggregator, host=args.host, port=args.port)
        await root.start()
        print(
            f"root aggregator listening on {args.host}:{root.port} — attach "
            f"workers with\n"
            f"  python -m repro gateway-serve --connect-root "
            f"{args.host}:{root.port} --workers {workers} --datasets "
            f"{scenario} --shards {n_shards} --scale {args.scale:g} "
            f"--seed {args.seed}",
            file=sys.stderr,
        )
        try:
            await root.wait_complete(timeout=args.serve_timeout or None)
        finally:
            await root.stop()
        return root

    try:
        root = gateway_run(_serve())
    except (TimeoutError, asyncio.TimeoutError) as error:
        raise CLIError(
            f"no worker fleet completed the run within --serve-timeout "
            f"{args.serve_timeout:g}s"
        ) from error
    except OSError as error:
        raise CLIError(f"cannot listen on {args.host}:{args.port}: {error}") from error
    result = root.result()
    snapshot = root.metrics.snapshot()
    aggregated = aggregate_worker_metrics(root.worker_metrics)
    bit_identical = None
    if args.verify:
        offline = run_protocol_sharded(source, **protocol)
        bit_identical = bool(
            result.collector.state.slot_sums == offline.collector.state.slot_sums
            and result.collector.state.slot_counts
            == offline.collector.state.slot_counts
        )
    rows = [
        ["scenario", scenario],
        ["shards aggregated", n_shards],
        ["workers reported", aggregated["totals"]["n_workers"]],
        ["reports ingested", result.n_reports],
        ["root bytes received", snapshot["bytes_received"]],
        ["root duplicates", snapshot["duplicates"]],
    ]
    if bit_identical is not None:
        rows.append(["bit-identical to sharded run", "yes" if bit_identical else "NO"])
    if args.metrics_out:
        payload = {
            "scenario": scenario,
            "n_shards": n_shards,
            "algorithm": protocol["algorithm"],
            "bit_identical": bit_identical,
            "root": snapshot,
        }
        payload.update(aggregated)
        _write_metrics_json(args.metrics_out, payload)
        rows.append(["metrics json", args.metrics_out])
    if bit_identical is False:
        raise CLIError(
            "root-aggregated estimates diverged from the offline sharded run"
        )
    return format_table(["metric", "value"], rows, title="Gateway root aggregator")


def _run_wal_compact(args: argparse.Namespace) -> str:
    from ..wal import WalCorruptionError, WriteAheadLog, compact, recover_pipeline

    if not args.wal:
        raise CLIError("wal-compact requires --wal DIR")
    if not WriteAheadLog.exists(args.wal):
        raise CLIError(f"no write-ahead log at {args.wal}")
    try:
        recovery = recover_pipeline(args.wal)
    except WalCorruptionError as error:
        raise CLIError(f"write-ahead log is damaged: {error}") from error
    summary = recovery.summary()
    rows = [[key, summary[key]] for key in sorted(summary)]
    if args.dry_run:
        return format_table(
            ["metric", "value"],
            rows,
            title="WAL verify (dry run; log unchanged)",
        )
    wal = recovery.pipeline.attach_wal(
        WriteAheadLog(args.wal, fsync=args.fsync)
    )
    try:
        outcome = compact(wal, recovery.pipeline)
    finally:
        wal.close()
    rows += [
        ["checkpoint written", outcome.checkpoint_path],
        ["live segment", outcome.live_segment],
        ["segments deleted", outcome.segments_deleted],
        ["checkpoints deleted", outcome.checkpoints_deleted],
        ["pending batches re-appended", outcome.pending_reappended],
    ]
    return format_table(["metric", "value"], rows, title="WAL compaction")


def _run_gateway_fleet(args: argparse.Namespace) -> str:
    from ..gateway import GatewayError, run_fleet

    if not args.connect:
        raise CLIError("gateway-fleet requires --connect HOST:PORT")
    host, _, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise CLIError(f"--connect must be HOST:PORT, got {args.connect!r}") from None
    scenario, source, n_shards, protocol = _gateway_workload(args)
    try:
        reports = run_fleet(
            source,
            host or "127.0.0.1",
            port,
            jitter=args.jitter,
            **protocol,
        )
    except (ConnectionError, TimeoutError, OSError) as error:
        raise CLIError(f"cannot reach gateway at {args.connect}: {error}") from error
    except GatewayError as error:
        raise CLIError(f"gateway rejected the fleet: {error}") from error
    rows = [
        [r.shard, r.uploaded, r.duplicates, r.skipped, r.reconnects]
        for r in reports
    ]
    return format_table(
        ["shard", "uploaded", "duplicates", "skipped", "reconnects"],
        rows,
        title=f"Gateway fleet: {scenario} -> {args.connect}",
    )


def _run_scan(args: argparse.Namespace) -> str:
    from ..scan import StoreError, load_config, run_scan, summarize_plan

    if args.bench:
        from ..scan.report import bench_lines, run_bench

        section = run_bench(
            out_path=args.bench_out,
            n_users=_scaled(2_000, args.scale),
            horizon=_scaled(64, args.scale),
            seed=args.seed,
            workers=max(args.workers, 1),
        )
        return "\n".join(bench_lines(section))

    if not args.target:
        raise CLIError(
            "scan needs a config file: python -m repro scan grid.toml "
            "(or --bench to regenerate the estimator matrix)"
        )
    try:
        config = load_config(args.target)
    except (FileNotFoundError, ValueError) as error:
        raise CLIError(str(error)) from error

    def progress(result) -> None:
        print(
            f"  cell {result.index:4d} done "
            f"({result.scalars.get('wall_seconds', 0.0):.2f}s)",
            file=sys.stderr,
        )

    try:
        run = run_scan(
            config,
            store_path=args.store,
            workers=max(args.workers, 1),
            resume=args.resume,
            dry_run=args.dry_run,
            stop_after=args.stop_after,
            on_cell=progress,
        )
    except (StoreError, ValueError) as error:
        raise CLIError(str(error)) from error
    if run.dry_run:
        return summarize_plan(run)
    rows = [
        ["config", f"{config.name} ({args.target})"],
        ["cells", f"{len(run.results)} / {run.n_cells}"],
        ["executed / resumed", f"{len(run.executed)} / {len(run.resumed)}"],
        ["pruned", len(run.pruned)],
        ["workers", max(args.workers, 1)],
        ["elapsed", f"{run.elapsed_seconds:.2f}s"],
    ]
    if run.reran:
        rows.append(["re-run (corrupted)", len(run.reran)])
    if run.stopped:
        rows.append(["stopped early", f"after {len(run.executed)} cells (--stop-after)"])
    if run.store_path:
        rows.append(["store", run.store_path])
        rows.append(["finalized", "yes" if run.finalized else "no (resume to finish)"])
    return format_table(["metric", "value"], rows, title="Scan")


def _run_scan_report(args: argparse.Namespace) -> str:
    from ..scan import StoreError, summarize_store

    if not args.target:
        raise CLIError(
            "scan-report needs a store directory: "
            "python -m repro scan-report results/"
        )
    try:
        return summarize_store(args.target)
    except StoreError as error:
        raise CLIError(str(error)) from error


EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "scan": _run_scan,
    "scan-report": _run_scan_report,
    "table1": _run_table1,
    "models": _run_models,
    "distribution": _run_distribution,
    "scenarios": _run_scenarios,
    "adversary": _run_adversary,
    "live": _run_live,
    "serve-replay": _run_serve_replay,
    "gateway-serve": _run_gateway_serve,
    "gateway-fleet": _run_gateway_fleet,
    "gateway-root": _run_gateway_root,
    "wal-compact": _run_wal_compact,
    "fig4": _run_fig_grid(run_fig4, "Fig.4"),
    "fig5": _run_fig_grid(run_fig5, "Fig.5"),
    "fig6": _run_fig6_like(run_fig6, "Fig.6"),
    "fig7": _run_fig6_like(run_fig7, "Fig.7"),
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
}


# One paragraph + one runnable example per subcommand, rendered into
# ``--help``'s epilog (and printed by ``python -m repro list``).  Keep
# the examples copy-pasteable — docs/operations.md links here.
COMMAND_HELP: Dict[str, str] = {
    "table1": (
        "Reproduce Table 1: per-mechanism utility across window sizes and "
        "datasets, on the vectorized population engine by default.\n"
        "  python -m repro table1 --scale 0.5"
    ),
    "models": (
        "Compare privacy models (event-, w-event-, user-level) on one "
        "stream: per-slot budget, protected span, and utility side by side.\n"
        "  python -m repro models --scale 0.2"
    ),
    "distribution": (
        "Per-slot exponential-mechanism distribution reconstruction "
        "quality (Wasserstein distance) across population shapes.\n"
        "  python -m repro distribution --scale 0.1 --epsilons 0.5 1.0"
    ),
    "scenarios": (
        "Population-scale scenario workloads (diurnal, bursty, ...) "
        "through the sharded runtime; reports population-mean MSE per "
        "estimator.\n"
        "  python -m repro scenarios --shards 4 --scale 0.5"
    ),
    "adversary": (
        "Adversarial robustness study: run each attack strategy against "
        "each robust-aggregation policy on paired benign/attacked runs "
        "sharing a seed, and report the manipulation-gain matrix.\n"
        "  python -m repro adversary --scale 0.5 --shards 2 "
        "--attack-fraction 0.05"
    ),
    "live": (
        "Live-serving study: the slot-clocked ingestion pipeline vs the "
        "offline runtime — throughput, latency, alerts, and the "
        "bit-identical check per scenario.\n"
        "  python -m repro live --shards 2 --scale 0.5"
    ),
    "serve-replay": (
        "Stream one scenario through the live pipeline with a standing "
        "dashboard; --sink writes a JSONL event log, --record-batches "
        "makes that log a complete replayable capture.\n"
        "  python -m repro serve-replay --datasets bursty --shards 2 "
        "--sink events.jsonl --record-batches"
    ),
    "gateway-serve": (
        "Serve a scenario over real TCP: loopback client fleet by "
        "default, --standalone to wait for an external gateway-fleet, "
        "--wal DIR for a durable run (an existing WAL directory is "
        "recovered and resumed instead), --verify for the bit-equality "
        "audit.  --workers N scales out to one OS process per worker "
        "under an in-process root aggregator; --connect-root HOST:PORT "
        "attaches the worker processes to an external gateway-root "
        "instead.\n"
        "  python -m repro gateway-serve --datasets bursty --shards 4 "
        "--workers 2 --verify"
    ),
    "gateway-root": (
        "The root of the shard-state aggregation tree: listen for "
        "gateway-serve --connect-root worker processes, merge their "
        "finalized per-slot shard states in shard order, and (with "
        "--verify) audit the merged estimates against the offline "
        "sharded run bit for bit.\n"
        "  python -m repro gateway-root --datasets bursty --shards 4 "
        "--port 7171 --verify"
    ),
    "gateway-fleet": (
        "The client half of a two-process deployment: rebuild the shard "
        "feeds from the same arguments as the server and upload them to "
        "--connect HOST:PORT, reconnecting and resuming on drops.\n"
        "  python -m repro gateway-fleet --connect 127.0.0.1:7070 "
        "--datasets bursty --shards 4"
    ),
    "scan": (
        "Run a declarative sweep grid (TOML/YAML) through the scan "
        "orchestrator into a resumable columnar store; --dry-run prints "
        "the cell plan, --resume continues an interrupted scan, --bench "
        "regenerates the BENCH_population.json estimator matrix.\n"
        "  python -m repro scan grid.toml --workers 4 --store results/"
    ),
    "scan-report": (
        "Summarize a scan store: completion state, per-scenario winners, "
        "per-algorithm error means, throughput, and the bit-equality "
        "fingerprint.\n"
        "  python -m repro scan-report results/"
    ),
    "wal-compact": (
        "Fold a write-ahead log into a checkpoint snapshot and delete "
        "the segments it covers; --dry-run only replays and verifies the "
        "log (integrity check), changing nothing.\n"
        "  python -m repro wal-compact --wal waldir --dry-run"
    ),
    "fig4": (
        "Utility vs epsilon grids per dataset and window (Fig. 4; fig5 "
        "is the same sweep for the sample-level baselines).\n"
        "  python -m repro fig4 --datasets c6h6 volume --windows 10 30 "
        "--scale 0.5"
    ),
    "fig5": (
        "Companion sweep to fig4 over the remaining mechanism family.\n"
        "  python -m repro fig5 --scale 0.5"
    ),
    "fig6": (
        "Aggregate utility vs epsilon across mechanisms (Fig. 6; fig7 is "
        "the matching sweep on its second metric).\n"
        "  python -m repro fig6 --scale 0.5"
    ),
    "fig7": (
        "Companion sweep to fig6 (second utility metric).\n"
        "  python -m repro fig7 --scale 0.5"
    ),
    "fig8": (
        "Population-mean estimation error vs epsilon on synthetic user "
        "populations (Fig. 8).\n"
        "  python -m repro fig8 --scale 0.5"
    ),
    "fig9": (
        "Per-dataset multi-metric sweep vs epsilon (Fig. 9).\n"
        "  python -m repro fig9 --datasets c6h6 --scale 0.5"
    ),
    "fig10": (
        "Dimensionality study: utility vs epsilon per stream dimension "
        "d (Fig. 10).\n"
        "  python -m repro fig10 --scale 0.5"
    ),
    "fig11": (
        "Budget-split sensitivity: utility across allocation deltas per "
        "dataset and epsilon (Fig. 11).\n"
        "  python -m repro fig11 --scale 0.25"
    ),
    "list": (
        "Print every runnable experiment name, one per line.\n"
        "  python -m repro list"
    ),
    "algorithms": (
        "Print the estimator registry with per-name capability flags "
        "(scalar/batch/sharded/live/participation).\n"
        "  python -m repro algorithms"
    ),
}


def _build_epilog() -> str:
    blocks = ["commands:"]
    for name in sorted(COMMAND_HELP):
        text = COMMAND_HELP[name]
        indented = "\n".join("    " + line for line in text.splitlines())
        blocks.append(f"  {name}\n{indented}")
    return "\n\n".join(blocks)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
        epilog=_build_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list", "algorithms"],
        help="which experiment to run ('list' prints the catalogue, "
        "'algorithms' the estimator registry with capability flags)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        help="scan: the grid config file (.toml/.yaml); scan-report: the "
        "store directory (other commands take no positional target)",
    )
    parser.add_argument(
        "--engine",
        choices=("scalar", "vectorized"),
        default="vectorized",
        help="execution engine for sweep-based experiments (table1, "
        "fig4-fig7, fig9): 'vectorized' batches all subsequences into "
        "one population pass per cell, 'scalar' runs the per-user "
        "reference loop (default: vectorized)",
    )
    parser.add_argument("--datasets", nargs="*", help="dataset names override")
    parser.add_argument("--windows", nargs="*", type=int, help="window sizes override")
    parser.add_argument(
        "--epsilons", nargs="*", type=float, help="privacy budget grid override"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiplier on subsequence/repeat counts (default 1.0)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="user-shards (and worker processes) for runtime-backed "
        "experiments like 'scenarios' (default: unsharded)",
    )
    parser.add_argument("--seed", type=int, default=0)
    live = parser.add_argument_group("live serving (live / serve-replay)")
    live.add_argument(
        "--sink",
        metavar="PATH",
        help="JSONL event-log path (serve-replay only; omit for no log)",
    )
    live.add_argument(
        "--record-batches",
        action="store_true",
        help="record every ingested batch in the sink, making the log a "
        "replayable capture (serve-replay only)",
    )
    live.add_argument(
        "--queue-capacity",
        type=int,
        default=256,
        help="bounded-queue capacity before producers block (default 256)",
    )
    live.add_argument(
        "--coalesce",
        type=int,
        default=8,
        help="max batches drained per consumer lock round-trip (default 8)",
    )
    live.add_argument(
        "--dashboard-window",
        type=int,
        default=5,
        help="rolling window (slots) for the standing dashboard queries — "
        "independent of the w-event privacy window set via --windows "
        "(default 5)",
    )
    live.add_argument(
        "--alert-threshold",
        type=float,
        default=0.52,
        help="dashboard threshold-alert level on the rolling slot mean "
        "(default 0.52 — raw-report means compress the signal toward "
        "0.5 at strong per-report privacy, so alert just above rest)",
    )
    gateway = parser.add_argument_group(
        "network gateway (gateway-serve / gateway-fleet / gateway-root)"
    )
    gateway.add_argument(
        "--algorithm",
        default="capp",
        help="estimator name for gateway workloads (any registry name; "
        "default capp)",
    )
    gateway.add_argument(
        "--host",
        default="127.0.0.1",
        help="gateway-serve listen address (default loopback)",
    )
    gateway.add_argument(
        "--port",
        type=int,
        default=0,
        help="gateway-serve listen port (default 0: ephemeral)",
    )
    gateway.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="gateway-fleet: the serving gateway's address",
    )
    gateway.add_argument(
        "--connect-root",
        metavar="HOST:PORT",
        help="gateway-serve: attach this invocation's worker processes "
        "to an external gateway-root instead of hosting the root "
        "in-process",
    )
    gateway.add_argument(
        "--jitter",
        type=float,
        default=0.0,
        help="max per-slot client arrival jitter in seconds (default 0)",
    )
    gateway.add_argument(
        "--standalone",
        action="store_true",
        help="gateway-serve: wait for an external gateway-fleet instead "
        "of running the loopback fleet in-process",
    )
    gateway.add_argument(
        "--verify",
        action="store_true",
        help="gateway-serve: re-run the offline sharded runtime and "
        "assert the gateway-served estimates are bit-identical",
    )
    gateway.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the gateway metrics snapshot as JSON",
    )
    gateway.add_argument(
        "--serve-timeout",
        type=float,
        default=0.0,
        help="standalone serve: give up after this many seconds "
        "(default 0: wait forever)",
    )
    scan = parser.add_argument_group("scenario scans (scan / scan-report)")
    scan.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes: scan cells fan out across them, and "
        "gateway-serve scales out to one gateway process per worker "
        "(default 1: serial / single gateway; results are bit-identical "
        "for every value)",
    )
    scan.add_argument(
        "--resume",
        action="store_true",
        help="continue a partial scan in --store: completed cells are "
        "verified and skipped, corrupted ones re-run",
    )
    scan.add_argument(
        "--store",
        metavar="DIR",
        help="columnar result store directory (default: the config's "
        "[scan].store key; omit both to run without persisting)",
    )
    scan.add_argument(
        "--stop-after",
        type=int,
        default=None,
        metavar="K",
        help="stop cleanly after K newly completed cells (mid-scan "
        "interrupt drill; the store stays resumable)",
    )
    scan.add_argument(
        "--bench",
        action="store_true",
        help="scan: re-measure the estimator matrix through the scan "
        "engine and merge users/sec into --bench-out (no config needed)",
    )
    scan.add_argument(
        "--bench-out",
        default="BENCH_population.json",
        metavar="PATH",
        help="trajectory file --bench merges into "
        "(default: BENCH_population.json)",
    )
    adversary = parser.add_argument_group("adversarial studies (adversary)")
    adversary.add_argument(
        "--attack-fraction",
        type=float,
        default=0.05,
        help="fraction of the user population the attacker controls "
        "(default 0.05)",
    )
    adversary.add_argument(
        "--strategies",
        nargs="*",
        default=None,
        metavar="NAME",
        help="attack strategies to sweep (default: extreme targeted "
        "random)",
    )
    adversary.add_argument(
        "--policies",
        nargs="*",
        default=None,
        metavar="NAME",
        help="robust-aggregation policies to sweep (default: none clip "
        "trim median-of-means)",
    )
    wal = parser.add_argument_group("durability (gateway-serve / wal-compact)")
    wal.add_argument(
        "--wal",
        metavar="DIR",
        help="write-ahead log directory: gateway-serve logs every "
        "accepted batch there before acking (an existing log is "
        "recovered and resumed); wal-compact folds it into a checkpoint",
    )
    wal.add_argument(
        "--fsync",
        choices=("always", "commit", "never"),
        default="commit",
        help="WAL fsync policy: 'always' syncs every record, 'commit' "
        "(default) syncs at slot commits, 'never' leaves flushing to "
        "the OS — all three survive kill -9; fsync only matters for "
        "power loss",
    )
    wal.add_argument(
        "--dry-run",
        action="store_true",
        help="wal-compact: replay and verify the log without writing a "
        "checkpoint or deleting anything; scan: print the expanded cell "
        "plan (filters, pruning, seeds) without executing",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.experiment == "algorithms":
        print(_format_algorithms())
        return 0
    if args.scale <= 0:
        print("--scale must be positive", file=sys.stderr)
        return 2
    try:
        print(EXPERIMENTS[args.experiment](args))
    except CLIError as error:
        print(f"error: {error.args[0] if error.args else error}", file=sys.stderr)
        return 2
    except KeyError as error:
        # Unknown dataset/algorithm/scenario names land here as KeyErrors
        # whose messages already carry the registries' difflib
        # suggestions; a usage mistake deserves one line, not a trace.
        # Any other KeyError is an internal bug — let it trace.
        message = error.args[0] if error.args else None
        if not (isinstance(message, str) and message.startswith("unknown ")):
            raise
        print(f"error: {message}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
