"""Algorithm registry: canonical names -> perturber factories.

Experiment configs and benchmarks refer to algorithms by the names the
paper uses in its figure legends ("SW-direct", "BA-SW", "IPP", "APP",
"CAPP", "ToPL", "Sampling", "APP-S", "CAPP-S", and the Fig. 9 mechanism
variants such as "Laplace-APP").
"""

from __future__ import annotations

from typing import Callable, Dict

from ..baselines import BASW, BDSW, NaiveSampling, SWDirect, ToPL
from ..baselines.sw_direct import MechanismDirect
from ..core import APP, CAPP, IPP, PPSampling, StreamPerturber

__all__ = ["ALGORITHM_FACTORIES", "make_algorithm", "algorithm_names"]

#: factory signature: (epsilon, w) -> StreamPerturber
Factory = Callable[[float, int], StreamPerturber]


def _mechanism_direct(mechanism: str) -> Factory:
    def factory(epsilon: float, w: int) -> StreamPerturber:
        return MechanismDirect(epsilon, w, mechanism=mechanism)

    return factory


def _mechanism_app(mechanism: str) -> Factory:
    def factory(epsilon: float, w: int) -> StreamPerturber:
        return APP(epsilon, w, mechanism=mechanism)

    return factory


ALGORITHM_FACTORIES: Dict[str, Factory] = {
    # non-sampling comparison set (Figs. 4, 5, 8a-d; Table I)
    "sw-direct": lambda epsilon, w: SWDirect(epsilon, w),
    "ba-sw": lambda epsilon, w: BASW(epsilon, w),
    "bd-sw": lambda epsilon, w: BDSW(epsilon, w),
    "ipp": lambda epsilon, w: IPP(epsilon, w),
    "app": lambda epsilon, w: APP(epsilon, w),
    "capp": lambda epsilon, w: CAPP(epsilon, w),
    "topl": lambda epsilon, w: ToPL(epsilon, w),
    # sampling comparison set (Figs. 6, 7, 8e-h)
    "sampling": lambda epsilon, w: NaiveSampling(epsilon, w),
    "app-s": lambda epsilon, w: PPSampling(epsilon, w, base="app"),
    "capp-s": lambda epsilon, w: PPSampling(epsilon, w, base="capp"),
    # mechanism generalizability (Fig. 9)
    "sw-app": _mechanism_app("sw"),
    "laplace-direct": _mechanism_direct("laplace"),
    "laplace-app": _mechanism_app("laplace"),
    "sr-direct": _mechanism_direct("sr"),
    "sr-app": _mechanism_app("sr"),
    "pm-direct": _mechanism_direct("pm"),
    "pm-app": _mechanism_app("pm"),
}


def make_algorithm(name: str, epsilon: float, w: int) -> StreamPerturber:
    """Instantiate an algorithm by its paper name (case-insensitive)."""
    key = name.lower()
    if key not in ALGORITHM_FACTORIES:
        known = ", ".join(sorted(ALGORITHM_FACTORIES))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}")
    return ALGORITHM_FACTORIES[key](epsilon, w)


def algorithm_names() -> "list[str]":
    """All registered algorithm names."""
    return sorted(ALGORITHM_FACTORIES)
