"""Algorithm registry (compatibility shim).

The registry grew into the package-level :mod:`repro.registry` so that
every layer — protocol, runtime, service, experiments — can resolve
estimators by canonical paper name without importing the experiment
harness.  This module re-exports the experiment-facing names so existing
imports keep working.
"""

from __future__ import annotations

from ..registry import (
    ALGORITHM_FACTORIES,
    ALGORITHMS,
    AlgorithmSpec,
    algorithm_names,
    capabilities,
    capability_matrix,
    make_algorithm,
    make_batch_engine,
)

__all__ = [
    "ALGORITHM_FACTORIES",
    "ALGORITHMS",
    "AlgorithmSpec",
    "algorithm_names",
    "capabilities",
    "capability_matrix",
    "make_algorithm",
    "make_batch_engine",
]
