"""Comparator algorithms from the paper's evaluation (Section VI)."""

from .ba_sw import BASW
from .batch import BatchBASW, BatchBDSW, BatchPPSampling, BatchToPL
from .bd_sw import BDSW
from .naive_sampling import NaiveSampling
from .sw_direct import MechanismDirect, SWDirect
from .topl import ToPL

__all__ = [
    "SWDirect",
    "MechanismDirect",
    "BASW",
    "BDSW",
    "ToPL",
    "NaiveSampling",
    "BatchBASW",
    "BatchBDSW",
    "BatchToPL",
    "BatchPPSampling",
]
