"""ToPL baseline (Wang et al., CCS 2021) under the paper's w-event framing.

ToPL publishes numerical streams in two phases:

1. **Range estimation** — an initial fraction of slots is reported through
   the SW mechanism; the collector fits the value distribution with EM and
   picks a clipping threshold ``tau`` at a high quantile (outliers beyond
   ``tau`` are discarded by clipping).
2. **Value perturbation** — the remaining slots are clipped to
   ``[0, tau]``, rescaled, and reported through the **Hybrid Mechanism**
   (HM), which is unbiased but has a very wide output range at small
   budgets.

The paper runs every comparator at ``eps / w`` per slot; at such small
budgets HM's output domain spans hundreds of units (e.g. ``[-80, 80]`` at
``eps = 0.05``), which is exactly why Table I shows ToPL's MSE two orders
of magnitude above the SW-based algorithms.

Both phases invoke their randomizer one slot at a time (the generator is
consumed in slot order), and the threshold fit runs through the shared
multi-row EM (:meth:`SquareWaveMechanism.estimate_distribution_rows`), so
the vectorized population engine is bit-identical to this reference for a
single user with the same generator (tested).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import ensure_probability
from ..core.base import StreamPerturber
from ..mechanisms import HybridMechanism, Mechanism, SquareWaveMechanism
from ..privacy import WEventAccountant

__all__ = ["ToPL", "estimate_tau_matrix", "estimate_tau_rows", "range_phase_length"]

#: smallest admissible clipping threshold (guards against a degenerate fit)
_MIN_TAU = 0.05

#: input-domain bins used by the threshold fit
_TAU_BINS = 32


def range_phase_length(horizon: int, range_fraction: float) -> int:
    """Number of leading slots spent on range estimation."""
    n_range = max(int(round(horizon * range_fraction)), 1)
    return min(n_range, horizon)


def _tau_from_distributions(distributions: np.ndarray, quantile: float) -> np.ndarray:
    """Quantile thresholds of fitted per-row distributions, floored."""
    cdf = np.cumsum(distributions, axis=1)
    # First bin whose CDF reaches the quantile — the vectorized form of
    # ``np.searchsorted(cdf_row, quantile)`` for nondecreasing rows.
    idx = (cdf < quantile).sum(axis=1)
    tau = (np.minimum(idx, _TAU_BINS - 1) + 1.0) / _TAU_BINS
    return np.maximum(tau, _MIN_TAU)


def estimate_tau_rows(
    report_rows: "Sequence[np.ndarray]",
    epsilon: float,
    quantile: float,
) -> np.ndarray:
    """Per-row clipping thresholds from SW range-estimation reports.

    Fits every row's value distribution with the shared multi-row EM and
    returns the ``quantile`` threshold of each, floored at the degenerate
    guard.  Rows with no reports stay at the uniform prior, which lands
    the threshold at 1.0 (no clipping).
    """
    mech = SquareWaveMechanism(epsilon)
    distributions = mech.estimate_distribution_rows(report_rows, n_bins=_TAU_BINS)
    return _tau_from_distributions(distributions, quantile)


def estimate_tau_matrix(
    report_matrix: np.ndarray,
    epsilon: float,
    quantile: float,
) -> np.ndarray:
    """:func:`estimate_tau_rows` for a NaN-padded phase-1 report matrix.

    Bit-identical to calling :func:`estimate_tau_rows` on the list of
    each row's finite entries, without the per-row Python extraction —
    the population engine's fit path.  Non-finite entries mark slots the
    user never reported; an all-NaN row keeps the uniform prior
    (``tau = 1``, no clipping).
    """
    mech = SquareWaveMechanism(epsilon)
    distributions = mech.estimate_distribution_matrix(
        report_matrix, n_bins=_TAU_BINS
    )
    return _tau_from_distributions(distributions, quantile)


class ToPL(StreamPerturber):
    """ToPL stream publisher.

    Args:
        epsilon: total w-event budget.
        w: window size (per-slot budget is ``eps / w``).
        range_fraction: fraction of slots used for range estimation.
        quantile: distribution quantile defining the threshold ``tau``.
        smoothing_window: optional SMA on the published stream.
    """

    def __init__(
        self,
        epsilon: float,
        w: int,
        range_fraction: float = 0.3,
        quantile: float = 0.98,
        smoothing_window: Optional[int] = None,
    ) -> None:
        super().__init__(epsilon, w, mechanism="hm", smoothing_window=smoothing_window)
        range_fraction = ensure_probability(range_fraction, "range_fraction")
        if not 0.0 < range_fraction < 1.0:
            raise ValueError("range_fraction must be strictly between 0 and 1")
        self.range_fraction = range_fraction
        self.quantile = ensure_probability(quantile, "quantile")

    def estimate_threshold(self, sw_reports: np.ndarray, epsilon: float) -> float:
        """Fit the SW reports with EM and return the ``quantile`` threshold."""
        return float(estimate_tau_rows([sw_reports], epsilon, self.quantile)[0])

    def _perturb_prepared(
        self,
        values: np.ndarray,
        mechanism: Mechanism,
        accountant: WEventAccountant,
        rng: np.random.Generator,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, float]":
        n = values.size
        inputs = values.copy()
        perturbed = np.empty(n)

        n_range = range_phase_length(n, self.range_fraction)

        # Phase 1: SW reports used both for publication and threshold fit.
        sw = SquareWaveMechanism(self.epsilon_per_slot)
        for t in range(n_range):
            perturbed[t] = sw.perturb_batch(values[t : t + 1], rng)[0]
            accountant.charge(t, self.epsilon_per_slot)

        if n_range < n:
            tau = self.estimate_threshold(perturbed[:n_range], self.epsilon_per_slot)
            hm = HybridMechanism(self.epsilon_per_slot)
            for t in range(n_range, n):
                scaled = np.clip(values[t : t + 1], 0.0, tau) / tau
                perturbed[t] = hm.perturb_batch(scaled, rng)[0] * tau
                accountant.charge(t, self.epsilon_per_slot)

        deviations = values - perturbed
        return inputs, perturbed, deviations, float(deviations.sum())

    def _make_batch_engine(
        self,
        n_users: int,
        rng: np.random.Generator,
        horizon: Optional[int] = None,
        record_history: bool = True,
    ):
        from .batch import BatchToPL

        if horizon is None:
            raise ValueError(
                "ToPL's two-phase schedule needs the stream horizon up "
                "front; pass horizon= when building its batch engine"
            )
        return BatchToPL(
            self.epsilon,
            self.w,
            n_users,
            horizon,
            rng=rng,
            range_fraction=self.range_fraction,
            quantile=self.quantile,
            record_history=record_history,
        )
