"""ToPL baseline (Wang et al., CCS 2021) under the paper's w-event framing.

ToPL publishes numerical streams in two phases:

1. **Range estimation** — an initial fraction of slots is reported through
   the SW mechanism; the collector fits the value distribution with EM and
   picks a clipping threshold ``tau`` at a high quantile (outliers beyond
   ``tau`` are discarded by clipping).
2. **Value perturbation** — the remaining slots are clipped to
   ``[0, tau]``, rescaled, and reported through the **Hybrid Mechanism**
   (HM), which is unbiased but has a very wide output range at small
   budgets.

The paper runs every comparator at ``eps / w`` per slot; at such small
budgets HM's output domain spans hundreds of units (e.g. ``[-80, 80]`` at
``eps = 0.05``), which is exactly why Table I shows ToPL's MSE two orders
of magnitude above the SW-based algorithms.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import ensure_probability
from ..core.base import StreamPerturber
from ..mechanisms import HybridMechanism, Mechanism, SquareWaveMechanism
from ..privacy import WEventAccountant

__all__ = ["ToPL"]

#: smallest admissible clipping threshold (guards against a degenerate fit)
_MIN_TAU = 0.05


class ToPL(StreamPerturber):
    """ToPL stream publisher.

    Args:
        epsilon: total w-event budget.
        w: window size (per-slot budget is ``eps / w``).
        range_fraction: fraction of slots used for range estimation.
        quantile: distribution quantile defining the threshold ``tau``.
        smoothing_window: optional SMA on the published stream.
    """

    def __init__(
        self,
        epsilon: float,
        w: int,
        range_fraction: float = 0.3,
        quantile: float = 0.98,
        smoothing_window: Optional[int] = None,
    ) -> None:
        super().__init__(epsilon, w, mechanism="hm", smoothing_window=smoothing_window)
        range_fraction = ensure_probability(range_fraction, "range_fraction")
        if not 0.0 < range_fraction < 1.0:
            raise ValueError("range_fraction must be strictly between 0 and 1")
        self.range_fraction = range_fraction
        self.quantile = ensure_probability(quantile, "quantile")

    def estimate_threshold(self, sw_reports: np.ndarray, epsilon: float) -> float:
        """Fit the SW reports with EM and return the ``quantile`` threshold."""
        mech = SquareWaveMechanism(epsilon)
        n_bins = 32
        distribution = mech.estimate_distribution(sw_reports, n_bins=n_bins)
        cdf = np.cumsum(distribution)
        idx = int(np.searchsorted(cdf, self.quantile))
        tau = (min(idx, n_bins - 1) + 1.0) / n_bins
        return max(tau, _MIN_TAU)

    def _perturb_prepared(
        self,
        values: np.ndarray,
        mechanism: Mechanism,
        accountant: WEventAccountant,
        rng: np.random.Generator,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, float]":
        n = values.size
        inputs = values.copy()
        perturbed = np.empty(n)

        n_range = max(int(round(n * self.range_fraction)), 1)
        n_range = min(n_range, n)

        # Phase 1: SW reports used both for publication and threshold fit.
        sw = SquareWaveMechanism(self.epsilon_per_slot)
        phase1 = np.asarray(sw.perturb(values[:n_range], rng), dtype=float)
        perturbed[:n_range] = phase1
        for t in range(n_range):
            accountant.charge(t, self.epsilon_per_slot)

        if n_range < n:
            tau = self.estimate_threshold(phase1, self.epsilon_per_slot)
            hm = HybridMechanism(self.epsilon_per_slot)
            scaled = np.clip(values[n_range:], 0.0, tau) / tau
            reports = np.asarray(hm.perturb(scaled, rng), dtype=float)
            perturbed[n_range:] = reports * tau
            for t in range(n_range, n):
                accountant.charge(t, self.epsilon_per_slot)

        deviations = values - perturbed
        return inputs, perturbed, deviations, float(deviations.sum())
