"""Population-batched engines for the baseline algorithms.

Every engine here mirrors the :class:`~repro.core.online.BatchOnlinePerturber`
contract — ``n_users`` independent streams held as NumPy state arrays, one
``submit`` per time slot perturbing the whole population slice — so the
vectorized/sharded/live runtimes can execute the paper's full comparison
set, not just the core four algorithms.

Determinism contract: for ``n_users = 1`` with the same generator, each
engine is bit-identical to its scalar :class:`~repro.core.base.StreamPerturber`
counterpart (tested in ``tests/baselines/test_batch_baselines.py``):

* the per-slot generator consumption order matches the scalar loop
  (probe draw, then publication draw, in slot order);
* Square Wave parameters for data-dependent budgets (BA/BD publication
  pots) come from cached :class:`SquareWaveMechanism` instances, so the
  exact ``math.expm1``-based constants of the scalar path are reused —
  NumPy's SIMD ``exp``/``expm1`` differ from ``libm`` in the last ulp,
  which would silently break bit-equality;
* per-user mechanism invocations are grouped by distinct budget and
  drawn group-by-group in ascending budget order, which is a no-op for a
  single user and deterministic for any population.

:class:`BatchPPSampling` is the one *streaming adaptation*: the scalar
PP-S replicates each segment's report backwards over the segment (it sees
the whole interval at once), which a slot-clocked engine cannot do.  The
engine instead uploads at each segment's **last** slot and re-publishes
that report (spending nothing) until the next upload; the uploaded
segment reports themselves are bit-identical to the scalar
``SamplingResult.segment_reports`` for one user.  The matrix-level batch
path (:meth:`PPSampling.perturb_population`) keeps the scalar replication
semantics exactly.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .. import kernels
from .._validation import ensure_positive_int
from ..core.online import BatchOnlinePerturber
from ..core.sampling import PPSampling, choose_num_samples, segment_bounds
from ..mechanisms import HybridMechanism, SquareWaveMechanism
from ..privacy import per_sample_budget, samples_per_window
from .ba_sw import BASW
from .bd_sw import _MIN_PUBLISH_EPSILON, BDSW
from .topl import ToPL, estimate_tau_matrix, range_phase_length

__all__ = ["BatchBASW", "BatchBDSW", "BatchToPL", "BatchPPSampling"]

#: cap on cached per-budget SW constant rows.  BA-SW's pot takes a
#: handful of discrete values so its cache stays tiny; BD-SW's
#: halving-rule candidates are data-dependent, so on adversarial streams
#: the cache could otherwise grow O(users x slots).  A row is seven
#: floats, so the cap is generous; an eviction only costs re-deriving
#: the constants.
_CONST_CACHE_LIMIT = 65536

#: columns of a cached constants row (see ``_sw_constants``)
_B, _NEAR_MASS, _P_MINUS_Q, _MEAN_CONST, _MEAN_COEF, _BASE_MOMENT = range(6)


def _sw_constants(eps, _exp=math.exp, _expm1=math.expm1):
    """The publish pass's scalar SW constants at one budget.

    Inlined :func:`sw_probabilities` (same ``math``-library expressions,
    minus the validation — publish budgets are halves of already
    validated pools) followed by the value-independent subexpressions of
    ``near_mass``, ``expected_output`` and the second raw moment, each
    in the exact Python-float expression order of
    :class:`SquareWaveMechanism`.  BD-SW's halving rule produces tens of
    thousands of distinct budgets per population run, so this runs hot:
    every call is a cache miss in ``_VariableSpendEngine``.
    """
    b = (eps + _expm1(-eps)) / (2.0 * (_expm1(eps) - eps))
    e_eps = _exp(eps)
    q = 1.0 / (2.0 * b * e_eps + 1.0)
    p = e_eps * q
    return (
        b,
        2.0 * b * p,  # near_mass
        p - q,
        q * (1.0 + 2.0 * b) / 2.0,  # value-independent part of E[y]
        2.0 * b * (p - q),  # coefficient of x in E[y]
        q * ((1.0 + b) ** 3 - (-b) ** 3) / 3,  # E[y^2] base term
    )


class _VariableSpendEngine(BatchOnlinePerturber):
    """Shared plumbing for engines whose per-slot spends are data-dependent.

    ``_perturb_active`` records each participating user's actual spend in
    ``self._spends``; the accountant reads (and clears) it through the
    :meth:`_slot_spends` hook, so skipped slots and masked-out users are
    charged exactly zero.
    """

    def __init__(self, epsilon, w, n_users, rng=None, record_history=True):
        super().__init__(
            epsilon, w, n_users, rng, mechanism="sw", record_history=record_history
        )
        self._spends = np.zeros(self.n_users)
        self.accumulated_deviation = np.zeros(self.n_users)
        self._const_keys = np.empty(0)
        self._const_kidx = np.empty(0, dtype=np.intp)
        self._const_buf = np.empty((256, 6))
        self._const_n = 0

    def _slot_spends(self, mask):
        spends = self._spends.copy()
        self._spends[:] = 0.0
        return spends

    def _constants_rows(self, budgets: np.ndarray) -> np.ndarray:
        """``(budgets.size, 6)`` constants matrix at per-user budgets.

        The scalar baselines build a fresh mechanism per publication;
        here each distinct budget's scalar constants row is computed once
        (:func:`_sw_constants`, Python float arithmetic in the exact
        scalar expression order — NumPy's SIMD ``exp``/``expm1`` differ
        from ``libm`` in the last ulp, so the constants can never be
        vectorized) and memoized in an append-only row buffer addressed
        through a sorted key array.  BD-SW's halving rule makes most
        budgets distinct across a population run, so lookups have to be
        cheap on both sides: hits are one vectorized ``searchsorted``,
        and the Python miss loop touches each new budget exactly once.
        ``budgets`` may be unsorted and contain duplicates.
        """
        keys = self._const_keys
        pos = np.searchsorted(keys, budgets)
        if keys.size:
            inb = pos < keys.size
            found = inb.copy()
            found[inb] = keys[pos[inb]] == budgets[inb]
            miss = ~found
        else:
            miss = np.ones(budgets.size, dtype=bool)
        if miss.any():
            missing = np.unique(budgets[miss])
            start = self._const_n
            if start + missing.size > _CONST_CACHE_LIMIT:
                keys = np.empty(0)
                self._const_kidx = np.empty(0, dtype=np.intp)
                start = 0
            buf = self._const_buf
            while start + missing.size > buf.shape[0]:
                buf = self._const_buf = np.concatenate([buf, np.empty_like(buf)])
            buf[start : start + missing.size] = np.array(
                [_sw_constants(b) for b in missing.tolist()]
            )
            where = np.searchsorted(keys, missing)
            self._const_keys = keys = np.insert(keys, where, missing)
            self._const_kidx = np.insert(
                self._const_kidx, where, np.arange(start, start + missing.size)
            )
            self._const_n = start + missing.size
            pos = np.searchsorted(keys, budgets)
        return self._const_buf[self._const_kidx[pos]]

    def _grouped_publish_noise(
        self,
        budgets: np.ndarray,
        values: np.ndarray,
        consts: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``sqrt(Var_SW(budget)(x))`` per user, at per-user budgets.

        One vectorized pass over the whole slice: the per-budget scalar
        constants come from the cache (or a caller-precomputed per-user
        slice of it — the rows are pure functions of the budget, so the
        assembly route cannot change the bits), the value-dependent
        arithmetic runs elementwise with per-user constant arrays —
        bit-identical to evaluating ``output_variance`` one budget group
        at a time.
        """
        if consts is None:
            consts = self._constants_rows(budgets)
        return kernels.sw_publish_noise(
            values,
            consts[:, _B],
            consts[:, _P_MINUS_Q],
            consts[:, _MEAN_CONST],
            consts[:, _MEAN_COEF],
            consts[:, _BASE_MOMENT],
        )

    def _grouped_publish_draw(
        self,
        budgets: np.ndarray,
        values: np.ndarray,
        consts: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """SW publication draws per user, grouped by distinct budget.

        Groups consume the generator in ascending-budget order — the
        historical contract, vacuous for a single user (the bit-identity
        case).  Instead of one ``perturb`` call per group, the pass
        draws every group's three uniform blocks as a single
        ``random(3 * n)`` call (the ``Generator.random`` fill is
        sequential, so one call sliced per group consumes the exact
        doubles of the per-group calls) and applies the SW arithmetic
        elementwise with per-user constants via the kernel tier.
        """
        uniq, inverse = np.unique(budgets, return_inverse=True)
        if consts is None:
            consts = self._constants_rows(uniq)[inverse]
        # Users sorted by (budget, original position): the stable argsort
        # reproduces each group's historical intra-group order.
        order = np.argsort(inverse, kind="stable")
        group = inverse[order]
        rows = consts[order]
        # perturb() clips through _prepare before drawing.
        v = np.clip(values[order], 0.0, 1.0)
        n = values.size
        uniforms = self._rng.random(3 * n)
        counts = np.bincount(inverse, minlength=uniq.size)
        starts = np.cumsum(counts) - counts
        # Group g's block is uniforms[3 * start : 3 * start + 3 * count],
        # split [near | span | far]; position-in-group indexes into each.
        pos = np.arange(n) - starts[group]
        base = 3 * starts[group]
        size = counts[group]
        reports = np.empty(n)
        reports[order] = kernels.sw_report_from_uniforms(
            v,
            rows[:, _B],
            rows[:, _NEAR_MASS],
            uniforms[base + pos],
            uniforms[base + size + pos],
            uniforms[base + 2 * size + pos],
        )
        return reports


class BatchBASW(_VariableSpendEngine):
    """Population-batched budget-absorbing SW publisher (BA-SW).

    Per-user state: the publication pot, the dead-slot payback counter,
    and the last published report.  Each slot draws one vectorized probe
    for every participant, then one publication draw per distinct pot
    value among the publishing users.  Masked-out users skip the slot
    entirely (no probe, no pot accrual, zero spend), matching the
    ``OnlinePerturber.skip`` semantics.
    """

    def __init__(
        self,
        epsilon,
        w,
        n_users,
        rng=None,
        probe_fraction: float = 0.5,
        record_history: bool = True,
    ):
        super().__init__(epsilon, w, n_users, rng, record_history)
        # The scalar class owns the parameter validation and the
        # probe/publication budget split — read the derived fields off a
        # template so the two engines cannot diverge.
        template = BASW(epsilon, w, probe_fraction=probe_fraction)
        self.probe_fraction = template.probe_fraction
        self.probe_epsilon = template.probe_epsilon
        self.publish_share = template.publish_share
        self.pot_cap = template.pot_cap
        self._probe_mech = SquareWaveMechanism(self.probe_epsilon)
        self.pot = np.zeros(self.n_users)
        self.dead_remaining = np.zeros(self.n_users, dtype=np.int64)
        self.last_report = np.full(self.n_users, np.nan)

    def _perturb_active(self, values: np.ndarray, active: np.ndarray) -> np.ndarray:
        probes = self._probe_mech.perturb_batch(values, self._rng)
        self._spends[active] = self.probe_epsilon
        reports = np.empty(values.size)

        dead = self.dead_remaining[active] > 0
        if dead.any():
            dead_ids = active[dead]
            self.dead_remaining[dead_ids] -= 1
            reports[dead] = self.last_report[dead_ids]

        alive = np.flatnonzero(~dead)
        if alive.size:
            alive_ids = active[alive]
            pot = np.minimum(self.pot[alive_ids] + self.publish_share, self.pot_cap)
            self.pot[alive_ids] = pot
            first = np.isnan(self.last_report[alive_ids])
            publish = first.copy()
            decide = np.flatnonzero(~first)
            if decide.size:
                decide_ids = alive_ids[decide]
                dissimilarity = np.abs(
                    probes[alive[decide]] - self.last_report[decide_ids]
                )
                noise = self._grouped_publish_noise(
                    pot[decide], values[alive[decide]]
                )
                publish[decide] = dissimilarity > noise
            pub = np.flatnonzero(publish)
            if pub.size:
                pub_ids = alive_ids[pub]
                spend = pot[pub]
                drawn = self._grouped_publish_draw(spend, values[alive[pub]])
                self._spends[pub_ids] += spend
                self.dead_remaining[pub_ids] = np.maximum(
                    np.ceil(2.0 * spend / self.publish_share).astype(np.int64) - 1,
                    0,
                )
                self.pot[pub_ids] = 0.0
                self.last_report[pub_ids] = drawn
            reports[alive] = self.last_report[alive_ids]

        self.accumulated_deviation[active] += values - reports
        return reports


class BatchBDSW(_VariableSpendEngine):
    """Population-batched budget-distributing SW publisher (BD-SW).

    Per-user state: the sliding window of the last ``w`` publication
    spends (time order) and the last published report.  The window's
    remaining budget is summed left-to-right, exactly like the scalar
    deque, so the halving-rule candidates match bit for bit.
    """

    def __init__(
        self,
        epsilon,
        w,
        n_users,
        rng=None,
        probe_fraction: float = 0.5,
        record_history: bool = True,
    ):
        super().__init__(epsilon, w, n_users, rng, record_history)
        template = BDSW(epsilon, w, probe_fraction=probe_fraction)
        self.probe_fraction = template.probe_fraction
        self.probe_epsilon = template.probe_epsilon
        self.publish_pool = template.publish_pool
        self._probe_mech = SquareWaveMechanism(self.probe_epsilon)
        self.window_spends = np.zeros((self.n_users, self.w))
        self.last_report = np.full(self.n_users, np.nan)

    def _perturb_active(self, values: np.ndarray, active: np.ndarray) -> np.ndarray:
        probes = self._probe_mech.perturb_batch(values, self._rng)
        self._spends[active] = self.probe_epsilon

        # Full participation (the common case) mutates the state matrix in
        # place; a partial slot works on a gathered copy, scattered back
        # below.  NumPy buffers the overlapping in-place shift, so both
        # paths see identical values.
        full = active.size == self.n_users
        window = self.window_spends if full else self.window_spends[active]
        window[:, :-1] = window[:, 1:]
        window[:, -1] = 0.0
        # Left-to-right accumulation mirrors the scalar `sum(deque)`.
        total = np.zeros(values.size)
        for j in range(self.w):
            total = total + window[:, j]
        candidate = (self.publish_pool - total) / 2.0

        last = self.last_report[active]
        first = np.isnan(last)
        can_publish = candidate > _MIN_PUBLISH_EPSILON
        publish = first & can_publish
        # Both the noise comparison and the publication draw need the SW
        # constants at the halving-rule candidates, and the publishing
        # users are a subset of the capable ones — one cache pass over
        # the capable slice (sorted-unique keys keep the lookup cheap)
        # serves both.  The rows are pure functions of the budget, so
        # slicing a shared matrix is bit-identical to two lookups.
        can_idx = np.flatnonzero(can_publish)
        if can_idx.size:
            uniq, inv = np.unique(candidate[can_idx], return_inverse=True)
            rows_can = self._constants_rows(uniq)[inv]
            pos_in_can = np.empty(values.size, dtype=np.intp)
            pos_in_can[can_idx] = np.arange(can_idx.size)
        decide = np.flatnonzero(~first & can_publish)
        if decide.size:
            dissimilarity = np.abs(probes[decide] - last[decide])
            noise = self._grouped_publish_noise(
                candidate[decide], values[decide], rows_can[pos_in_can[decide]]
            )
            publish[decide] = dissimilarity > noise

        pub = np.flatnonzero(publish)
        if pub.size:
            pub_ids = active[pub]
            spend = candidate[pub]
            drawn = self._grouped_publish_draw(
                spend, values[pub], rows_can[pos_in_can[pub]]
            )
            self._spends[pub_ids] += spend
            window[pub, -1] = spend
            self.last_report[pub_ids] = drawn
            last = self.last_report[active]

        # Degenerate fallback (no budget, nothing published yet): publish
        # the probe so the collector still receives something.
        fallback = np.flatnonzero(np.isnan(last))
        reports = np.where(np.isnan(last), probes, last)
        if fallback.size:
            self.last_report[active[fallback]] = probes[fallback]

        if not full:
            self.window_spends[active] = window
        self.accumulated_deviation[active] += values - reports
        return reports


class BatchToPL(BatchOnlinePerturber):
    """Population-batched ToPL: SW range phase, then HM value phase.

    The two-phase schedule is slot-indexed, so the engine needs the run
    horizon at construction.  Phase-1 reports are buffered per user; the
    per-user clipping thresholds are fitted in one multi-row EM pass when
    the first phase-2 slot arrives.  A user who never reported during
    phase 1 (fully masked out) keeps the uniform prior, i.e. ``tau = 1``
    (no clipping).
    """

    def __init__(
        self,
        epsilon,
        w,
        n_users,
        horizon: int,
        rng=None,
        range_fraction: float = 0.3,
        quantile: float = 0.98,
        record_history: bool = True,
    ):
        super().__init__(
            epsilon, w, n_users, rng, mechanism="hm", record_history=record_history
        )
        template = ToPL(
            epsilon, w, range_fraction=range_fraction, quantile=quantile
        )
        self.range_fraction = template.range_fraction
        self.quantile = template.quantile
        self.horizon = ensure_positive_int(horizon, "horizon")
        self.n_range = range_phase_length(self.horizon, self.range_fraction)
        self._sw = SquareWaveMechanism(self.epsilon_per_slot)
        self._hm = HybridMechanism(self.epsilon_per_slot)
        self._phase1 = np.full((self.n_users, self.n_range), np.nan)
        self.tau: Optional[np.ndarray] = None
        self.accumulated_deviation = np.zeros(self.n_users)

    def _fit_tau(self) -> None:
        # One batched fit over the NaN-padded phase-1 buffer: bit-identical
        # to extracting each row's finite reports and fitting row lists,
        # without the per-user Python extraction loop.
        self.tau = estimate_tau_matrix(
            self._phase1, self.epsilon_per_slot, self.quantile
        )

    def _perturb_active(self, values: np.ndarray, active: np.ndarray) -> np.ndarray:
        t = self._t
        if t >= self.horizon:
            raise RuntimeError(
                f"all {self.horizon} slots already submitted; ToPL's phase "
                "schedule covers a fixed horizon"
            )
        if t < self.n_range:
            reports = self._sw.perturb_batch(values, self._rng)
            self._phase1[active, t] = reports
        else:
            if self.tau is None:
                self._fit_tau()
            tau = self.tau[active]
            scaled = np.clip(values, 0.0, tau) / tau
            reports = self._hm.perturb_batch(scaled, self._rng) * tau
        self.accumulated_deviation[active] += values - reports
        return reports


class BatchPPSampling(BatchOnlinePerturber):
    """Slot-clocked streaming PP-S over a population.

    Within a segment the engine buffers each user's values; at the
    segment's last slot it uploads the perturbed segment mean through the
    inner batched PP engine (spending the Theorem-6 per-sample budget)
    and re-publishes that report — spending nothing — on the following
    slots until the next upload.  Slots before the first upload produce
    no report (NaN), which the protocol engines translate into "user did
    not report".

    Sampling decides its uploads from the calendar, not per user, so the
    engine requires full participation: partial masks raise.
    """

    def __init__(
        self,
        epsilon,
        w,
        n_users,
        horizon: int,
        base="capp",
        n_samples: Optional[int] = None,
        base_kwargs: Optional[dict] = None,
        rng=None,
        record_history: bool = True,
    ):
        super().__init__(
            epsilon, w, n_users, rng, mechanism="sw", record_history=record_history
        )
        self.horizon = ensure_positive_int(horizon, "horizon")
        # Reuse the scalar class for base resolution and parameter checks.
        template = PPSampling(
            epsilon, w, base=base, n_samples=n_samples, base_kwargs=base_kwargs
        )
        n_samples = template.n_samples or choose_num_samples(
            self.horizon, self.w, self.epsilon
        )
        self.n_samples = min(n_samples, self.horizon)
        self.segment_length = self.horizon // self.n_samples
        self.samples_per_window = samples_per_window(self.w, self.segment_length)
        self.epsilon_per_sample = per_sample_budget(
            self.epsilon, self.w, self.segment_length
        )
        self._bounds = segment_bounds(self.horizon, self.n_samples)
        self._upload_slots = {hi - 1: r for r, (_, hi) in enumerate(self._bounds)}
        self.inner = template.base_class(
            epsilon=self.epsilon_per_sample * self.samples_per_window,
            w=self.samples_per_window,
            **template.base_kwargs,
        )._make_batch_engine(
            self.n_users,
            self._rng,
            horizon=self.n_samples,
            record_history=record_history,
        )
        self._columns: "list[np.ndarray]" = []
        self._last_report = np.full(self.n_users, np.nan)
        self._spend_now = 0.0

    def _slot_spends(self, mask):
        spend, self._spend_now = self._spend_now, 0.0
        return spend

    def submit(self, values, mask=None):
        # Guard at the submit boundary, not inside _perturb_active: the
        # base class skips _perturb_active entirely on an all-masked
        # slot, which would silently advance the slot clock past an
        # upload and desynchronize every later segment.
        if mask is not None:
            raise NotImplementedError(
                "sampling engines upload on a fixed calendar shared by the "
                "whole population and do not support partial participation"
            )
        return super().submit(values)

    def skip_slot(self):
        raise NotImplementedError(
            "sampling engines upload on a fixed calendar shared by the "
            "whole population and cannot skip slots"
        )

    def _perturb_active(self, values: np.ndarray, active: np.ndarray) -> np.ndarray:
        t = self._t
        if t >= self.horizon:
            raise RuntimeError(
                f"all {self.horizon} slots already submitted; the sampling "
                "segmentation covers a fixed horizon"
            )
        self._columns.append(values.copy())
        upload = self._upload_slots.get(t)
        if upload is not None:
            segment = np.column_stack(self._columns)
            self._columns.clear()
            means = np.clip(segment.mean(axis=1), 0.0, 1.0)
            self._last_report = self.inner.submit(means)
            self._spend_now = self.epsilon_per_sample
        return self._last_report
