"""Naive sampling baseline ("Sampling" in Figures 6-8).

Same segmentation and budget concentration as PP-S, but the segment means
are perturbed with plain SW (no deviation feedback): this isolates the
benefit of perturbation parameterization on top of sampling.
"""

from __future__ import annotations

from typing import Optional

from ..core.sampling import PPSampling
from .sw_direct import SWDirect

__all__ = ["NaiveSampling"]


class NaiveSampling(PPSampling):
    """Segment means + direct SW at the Theorem-6 per-sample budget."""

    def __init__(
        self,
        epsilon: float,
        w: int,
        n_samples: Optional[int] = None,
    ) -> None:
        super().__init__(epsilon, w, base=SWDirect, n_samples=n_samples)
