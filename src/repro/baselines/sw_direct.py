"""Direct per-slot perturbation baselines.

``SWDirect`` is the paper's naive comparator: every slot is perturbed
independently by the SW mechanism with ``eps / w`` and the reports are
published as-is.  ``MechanismDirect`` generalizes the same loop to any
registered mechanism (Laplace-direct, SR-direct, PM-direct in Fig. 9).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.base import StreamPerturber
from ..mechanisms import Mechanism
from ..privacy import WEventAccountant

__all__ = ["SWDirect", "MechanismDirect"]


class MechanismDirect(StreamPerturber):
    """Perturb each slot independently with a chosen mechanism.

    No deviation feedback: the input at slot ``t`` is exactly ``x_t``.
    Deviations are still recorded so downstream analysis can compare the
    bookkeeping across algorithms.

    The randomizer is invoked one slot at a time — the generator is
    consumed in slot order, exactly like the online/batched engines, so
    the vectorized population path is bit-identical to this reference
    for a single user with the same generator (tested).
    """

    def _perturb_prepared(
        self,
        values: np.ndarray,
        mechanism: Mechanism,
        accountant: WEventAccountant,
        rng: np.random.Generator,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, float]":
        n = values.size
        inputs = values.copy()
        perturbed = np.empty(n)
        for t in range(n):
            perturbed[t] = mechanism.perturb_batch(values[t : t + 1], rng)[0]
            accountant.charge(t, self.epsilon_per_slot)
        deviations = values - perturbed
        return inputs, perturbed, deviations, float(deviations.sum())

    def _make_batch_engine(self, n_users, rng, horizon=None, record_history=True):
        from ..core.online import BatchOnlineSWDirect

        return BatchOnlineSWDirect(
            self.epsilon,
            self.w,
            n_users,
            rng,
            mechanism=self.mechanism_class,
            record_history=record_history,
        )


class SWDirect(MechanismDirect):
    """The paper's "SW-direct" baseline (SW mechanism, no smoothing)."""

    def __init__(
        self,
        epsilon: float,
        w: int,
        smoothing_window: Optional[int] = None,
    ) -> None:
        super().__init__(epsilon, w, mechanism="sw", smoothing_window=smoothing_window)
