"""Budget-Distribution + SW baseline ("BD-SW") — extension beyond the paper.

Kellaris et al. 2014 propose *two* w-event schemes: budget absorption
(BA, reproduced in :mod:`repro.baselines.ba_sw` because the paper
compares against it) and **budget distribution** (BD), which LDP-IDS also
adapts.  BD never lets a publication starve: each slot's decision uses a
dissimilarity probe as in BA, but a slot that publishes spends *half of
the window's remaining publication budget*, so the series
``eps/2 · (1/2, 1/4, 1/8, ...)`` of successive in-window publications
always sums below ``eps/2``.

Recycling: publication budget spent at slots that have since slid out of
the window is reclaimed (their spend no longer constrains the current
window), which the implementation tracks with a per-slot spend deque.

Included as an ablation comparator: BD reacts faster than BA on volatile
streams (no payback dead-time) at the cost of smaller per-publication
budgets.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional

import numpy as np

from .._validation import ensure_probability
from ..core.base import StreamPerturber
from ..mechanisms import Mechanism, SquareWaveMechanism
from ..privacy import WEventAccountant

__all__ = ["BDSW"]

#: smallest budget worth publishing with (below this, approximate)
_MIN_PUBLISH_EPSILON = 1e-4


class BDSW(StreamPerturber):
    """Budget-distributing SW publisher.

    Args:
        epsilon: total w-event budget.
        w: window size.
        probe_fraction: share of the budget reserved for dissimilarity
            probes (``f * eps / w`` per slot); the remaining
            ``(1 - f) * eps`` is the per-window publication pool.
        smoothing_window: optional SMA for the published stream.
    """

    def __init__(
        self,
        epsilon: float,
        w: int,
        probe_fraction: float = 0.5,
        smoothing_window: Optional[int] = None,
    ) -> None:
        super().__init__(epsilon, w, mechanism="sw", smoothing_window=smoothing_window)
        probe_fraction = ensure_probability(probe_fraction, "probe_fraction")
        if not 0.0 < probe_fraction < 1.0:
            raise ValueError("probe_fraction must be strictly between 0 and 1")
        self.probe_fraction = probe_fraction
        self.probe_epsilon = self.epsilon_per_slot * probe_fraction
        #: publication pool available inside any single window
        self.publish_pool = self.epsilon * (1.0 - probe_fraction)

    def _perturb_prepared(
        self,
        values: np.ndarray,
        mechanism: Mechanism,
        accountant: WEventAccountant,
        rng: np.random.Generator,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, float]":
        n = values.size
        inputs = np.empty(n)
        perturbed = np.empty(n)
        deviations = np.empty(n)

        probe_mech = SquareWaveMechanism(self.probe_epsilon)
        # Publication spends of the last w slots (0 for approximations).
        window_spends: Deque[float] = deque([0.0] * self.w, maxlen=self.w)
        last_report: Optional[float] = None

        for t in range(n):
            x = float(values[t])
            inputs[t] = x

            probe = float(probe_mech.perturb(x, rng))
            accountant.charge(t, self.probe_epsilon)

            # Budget the window still allows: pool minus in-window spends.
            window_spends.append(0.0)
            available = self.publish_pool - sum(window_spends)
            candidate = available / 2.0  # BD's halving rule

            publish = last_report is None and candidate > _MIN_PUBLISH_EPSILON
            if last_report is not None and candidate > _MIN_PUBLISH_EPSILON:
                dissimilarity = abs(probe - last_report)
                publish_noise = math.sqrt(
                    float(SquareWaveMechanism(candidate).output_variance(x))
                )
                publish = dissimilarity > publish_noise

            if publish:
                report = float(SquareWaveMechanism(candidate).perturb(x, rng))
                accountant.charge(t, candidate)
                window_spends[-1] = candidate
                last_report = report
            perturbed[t] = last_report if last_report is not None else probe
            if last_report is None:
                # Degenerate: no budget to publish at all; fall back to the
                # probe value so the collector still receives something.
                last_report = probe
            deviations[t] = x - perturbed[t]
        return inputs, perturbed, deviations, float(deviations.sum())

    def _make_batch_engine(self, n_users, rng, horizon=None, record_history=True):
        from .batch import BatchBDSW

        return BatchBDSW(
            self.epsilon,
            self.w,
            n_users,
            rng,
            probe_fraction=self.probe_fraction,
            record_history=record_history,
        )
