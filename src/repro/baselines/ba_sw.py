"""Budget-Absorption + SW baseline ("BA-SW") — Kellaris et al. 2014 / LDP-IDS.

The paper's BA-SW comparator combines w-event *budget absorption* with the
SW mechanism: each slot's ``eps / w`` is split between a **dissimilarity
probe** and **publication**.  When the probe says the value barely moved
since the last release, the slot *approximates* (re-publishes the previous
report) and donates its publication share to a pot; a slot that does
publish spends the whole pot.  On streams with long constant stretches —
the paper's Power dataset — most slots approximate, so real publications
run with budgets far above ``eps / w``.

Privacy argument (enforced at runtime by the accountant):

* probes spend ``f * eps / w`` every slot — at most ``f * eps`` per window;
* the pot is capped at ``(1 - f) * eps / 2`` and a publication spending
  ``s`` *nullifies* the following ``ceil(2 s / share) - 1`` slots (they
  neither publish nor accumulate).  The double payback makes the total
  publication spend in any ``w``-window at most ``(1 - f) * eps``: the
  first in-window publication is bounded by the pot cap and every later
  one is funded by live in-window slots, while its own dead slots occupy
  twice that many in-window positions.

The :class:`~repro.privacy.WEventAccountant` audits the actual spends, so
any violation of the argument above would fail loudly.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .._validation import ensure_probability
from ..core.base import StreamPerturber
from ..mechanisms import Mechanism, SquareWaveMechanism
from ..privacy import WEventAccountant

__all__ = ["BASW"]


class BASW(StreamPerturber):
    """Budget-absorbing SW publisher.

    Args:
        epsilon: total w-event budget.
        w: window size.
        probe_fraction: share ``f`` of each slot's budget spent on the
            dissimilarity probe (the remainder feeds the publication pot).
        smoothing_window: optional SMA on the published stream (the paper
            publishes BA-SW raw).
    """

    def __init__(
        self,
        epsilon: float,
        w: int,
        probe_fraction: float = 0.5,
        smoothing_window: Optional[int] = None,
    ) -> None:
        super().__init__(epsilon, w, mechanism="sw", smoothing_window=smoothing_window)
        probe_fraction = ensure_probability(probe_fraction, "probe_fraction")
        if not 0.0 < probe_fraction < 1.0:
            raise ValueError("probe_fraction must be strictly between 0 and 1")
        self.probe_fraction = probe_fraction
        self.probe_epsilon = self.epsilon_per_slot * probe_fraction
        self.publish_share = self.epsilon_per_slot - self.probe_epsilon
        #: pot cap: half the window's publication budget (see module doc)
        self.pot_cap = self.publish_share * self.w / 2.0

    def _perturb_prepared(
        self,
        values: np.ndarray,
        mechanism: Mechanism,
        accountant: WEventAccountant,
        rng: np.random.Generator,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, float]":
        n = values.size
        inputs = np.empty(n)
        perturbed = np.empty(n)
        deviations = np.empty(n)

        probe_mech = SquareWaveMechanism(self.probe_epsilon)
        pot = 0.0
        dead_remaining = 0  # slots nullified to pay back the last spend
        last_report: Optional[float] = None

        for t in range(n):
            x = float(values[t])
            inputs[t] = x

            # Dissimilarity probe (always runs, always charged).
            probe = float(probe_mech.perturb(x, rng))
            accountant.charge(t, self.probe_epsilon)

            if dead_remaining > 0:
                # Nullified slot: approximate, no accumulation.
                dead_remaining -= 1
                perturbed[t] = last_report
                deviations[t] = x - perturbed[t]
                continue

            pot = min(pot + self.publish_share, self.pot_cap)
            publish = last_report is None
            if not publish:
                dissimilarity = abs(probe - last_report)
                publish_noise = math.sqrt(
                    float(SquareWaveMechanism(pot).output_variance(x))
                )
                publish = dissimilarity > publish_noise

            if publish:
                spend = pot
                report = float(SquareWaveMechanism(spend).perturb(x, rng))
                accountant.charge(t, spend)
                dead_remaining = max(
                    int(math.ceil(2.0 * spend / self.publish_share)) - 1, 0
                )
                pot = 0.0
                last_report = report
            perturbed[t] = last_report
            deviations[t] = x - perturbed[t]
        return inputs, perturbed, deviations, float(deviations.sum())

    def _make_batch_engine(self, n_users, rng, horizon=None, record_history=True):
        from .batch import BatchBASW

        return BatchBASW(
            self.epsilon,
            self.w,
            n_users,
            rng,
            probe_fraction=self.probe_fraction,
            record_history=record_history,
        )
