"""Optional compiled-kernel tier for the perturbation hot paths.

The population engines spend their time in a handful of elementwise
passes: the Square Wave draw (the paper's primary randomizer, the
perturbation substrate of 10 of the 17 registered estimators) and the
BD/BA publish pass (per-user SW draws and noise thresholds at
data-dependent budgets).  This package holds those passes as free
functions with two interchangeable backends:

* ``numpy`` — the reference implementation, always available; expression
  by expression identical to the historical inline code, so routing
  through the kernel tier changes **zero bits**.
* ``numba`` — ``@njit``-compiled loops (``fastmath=False``, so LLVM may
  not contract multiplies and adds into FMAs), used only when numba is
  importable.  Kernels consume **pre-drawn uniforms**: the caller draws
  from its ``Generator`` exactly as the numpy path does, so the stream
  consumption order — the determinism contract of the whole runtime —
  is backend-invariant, and the arithmetic is restricted to operations
  (add/sub/mul/div/compare/select) whose IEEE results cannot differ
  between a C loop and a NumPy ufunc.

Backend selection happens at import and is re-evaluated by
:func:`select_backend`:

* ``REPRO_KERNELS=auto`` (default) — numba when importable, else numpy;
* ``REPRO_KERNELS=numba`` — require numba, raise if it is missing;
* ``REPRO_KERNELS=numpy`` / ``REPRO_KERNELS=off`` — force the fallback.

The equivalence harness (``tests/kernels/``) pins every kernel bitwise
against the pre-kernel inline expressions, for both backends, and the
golden fixtures hold the full engines to the pre-rewrite numbers.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from . import _numpy

__all__ = [
    "active_backend",
    "numba_available",
    "select_backend",
    "sw_report_from_uniforms",
    "sw_publish_noise",
]

#: env switch consulted by :func:`select_backend`
ENV_VAR = "REPRO_KERNELS"

_VALID_MODES = ("auto", "numba", "numpy", "off")

_impl = _numpy
_backend = "numpy"


def numba_available() -> bool:
    """Whether the numba backend can be imported and compiled."""
    try:
        from . import _numba  # noqa: F401
    except ImportError:
        return False
    return True


def select_backend(mode: Optional[str] = None) -> str:
    """(Re-)select the kernel backend; returns the active backend name.

    ``mode`` overrides the :data:`ENV_VAR` environment switch; invalid
    modes raise ``ValueError`` and ``mode="numba"`` raises
    ``ImportError`` when numba is not importable (``auto`` silently
    falls back to numpy instead).
    """
    global _impl, _backend
    if mode is None:
        mode = os.environ.get(ENV_VAR, "auto").strip().lower() or "auto"
    if mode not in _VALID_MODES:
        raise ValueError(
            f"{ENV_VAR} must be one of {_VALID_MODES}, got {mode!r}"
        )
    if mode in ("numpy", "off"):
        _impl, _backend = _numpy, "numpy"
    elif mode == "numba":
        from . import _numba

        _impl, _backend = _numba, "numba"
    else:  # auto
        try:
            from . import _numba

            _impl, _backend = _numba, "numba"
        except ImportError:
            _impl, _backend = _numpy, "numpy"
    return _backend


def active_backend() -> str:
    """The backend currently executing the kernels (``numpy``/``numba``)."""
    return _backend


def sw_report_from_uniforms(
    values: np.ndarray,
    b,
    near_mass,
    u_near: np.ndarray,
    u_span: np.ndarray,
    u_far: np.ndarray,
) -> np.ndarray:
    """Square Wave reports from pre-drawn uniforms.

    ``values`` are canonical-domain inputs; ``b``/``near_mass`` are the
    SW constants, scalar for a fixed-budget mechanism or per-element
    arrays for the grouped data-dependent-budget pass.  The three
    uniform arrays are the mechanism's draws in its historical order:
    branch selector, near-window offset, far-region position.
    """
    return _impl.sw_report_from_uniforms(values, b, near_mass, u_near, u_span, u_far)


def sw_publish_noise(
    values: np.ndarray,
    b,
    p_minus_q,
    mean_const,
    mean_coef,
    base_moment,
) -> np.ndarray:
    """``sqrt(Var_SW(x))`` with (possibly per-element) SW constants.

    The scalar parts of the variance formula (``mean_const``,
    ``mean_coef``, ``base_moment``) must be precomputed with Python
    float arithmetic in the historical expression order — see
    ``repro.baselines.batch._sw_constants`` — so the result stays
    bit-identical to ``sqrt(SquareWaveMechanism.output_variance(x))``.
    """
    return _impl.sw_publish_noise(
        values, b, p_minus_q, mean_const, mean_coef, base_moment
    )


select_backend()
