"""Numba-compiled kernel implementations.

Importing this module requires numba; :func:`repro.kernels.select_backend`
treats the ImportError as "backend unavailable".  The compiled loops are
restricted to add/sub/mul/div/compare/select on float64 — operations
whose IEEE-754 results are identical between a scalar C loop and a
NumPy ufunc — and are compiled with ``fastmath=False`` so LLVM cannot
contract a multiply-add into an FMA (which would change the last ulp).

The noise kernel stays on the NumPy implementation even under this
backend: its cube terms go through NumPy's integer-exponent ``power``
fast path, which a hand-written loop cannot be proven to reproduce
bit-for-bit, and the draw loop is where the time goes anyway.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from ._numpy import sw_publish_noise  # noqa: F401  (numpy-only on purpose)


@njit(cache=True, fastmath=False)
def _sw_report_scalar_const(values, b, near_mass, u_near, u_span, u_far):
    n = values.size
    out = np.empty(n, dtype=np.float64)
    for i in range(n):
        if u_near[i] < near_mass:
            out[i] = values[i] + b * (2.0 * u_span[i] - 1.0)
        elif u_far[i] < values[i]:
            out[i] = -b + u_far[i]
        else:
            out[i] = b + u_far[i]
    return out


@njit(cache=True, fastmath=False)
def _sw_report_array_const(values, b, near_mass, u_near, u_span, u_far):
    n = values.size
    out = np.empty(n, dtype=np.float64)
    for i in range(n):
        if u_near[i] < near_mass[i]:
            out[i] = values[i] + b[i] * (2.0 * u_span[i] - 1.0)
        elif u_far[i] < values[i]:
            out[i] = -b[i] + u_far[i]
        else:
            out[i] = b[i] + u_far[i]
    return out


def sw_report_from_uniforms(values, b, near_mass, u_near, u_span, u_far):
    values = np.ascontiguousarray(values, dtype=np.float64)
    u_near = np.ascontiguousarray(u_near, dtype=np.float64)
    u_span = np.ascontiguousarray(u_span, dtype=np.float64)
    u_far = np.ascontiguousarray(u_far, dtype=np.float64)
    if np.ndim(b) == 0:
        return _sw_report_scalar_const(
            values, float(b), float(near_mass), u_near, u_span, u_far
        )
    return _sw_report_array_const(
        values,
        np.ascontiguousarray(b, dtype=np.float64),
        np.ascontiguousarray(near_mass, dtype=np.float64),
        u_near,
        u_span,
        u_far,
    )
