"""Reference (pure NumPy) kernel implementations.

These are the exact expressions the mechanisms and batch engines used
inline before the kernel tier existed — moved, not rewritten.  Every
operation is elementwise IEEE arithmetic, so broadcasting a Python-float
constant and indexing a per-element constant array produce the same
bits; the equivalence harness pins both.
"""

from __future__ import annotations

import numpy as np


def sw_report_from_uniforms(values, b, near_mass, u_near, u_span, u_far):
    # Historically the body of SquareWaveMechanism.perturb: branch
    # selector, then uniform in [v - b, v + b], then a position on the
    # length-1 far region [-b, v - b) u (v + b, 1 + b].
    near = u_near < near_mass
    near_draw = values + b * (2.0 * u_span - 1.0)
    left = u_far < values
    far_draw = np.where(left, -b + u_far, b + u_far)
    return np.where(near, near_draw, far_draw)


def sw_publish_noise(values, b, p_minus_q, mean_const, mean_coef, base_moment):
    # sqrt of SquareWaveMechanism.output_variance with the all-scalar
    # subexpressions precomputed (Python float arithmetic) and the
    # value-dependent parts kept in the historical ufunc order.
    mean = mean_const + mean_coef * values
    window = p_minus_q * ((values + b) ** 3 - (values - b) ** 3) / 3
    raw_second = base_moment + window
    return np.sqrt(raw_second - mean**2)
