"""Capability-aware estimator registry: the population-scale entry point.

Every algorithm the paper evaluates (Table I, Figs. 4-9) is registered
here under its figure-legend name, with two factories per name:

* :func:`make_algorithm` — the scalar :class:`~repro.core.base.StreamPerturber`
  reference (one user, one interval at a time);
* :func:`make_batch_engine` — the vectorized population engine driving
  ``n_users`` streams as NumPy state arrays, the execution substrate of
  :func:`~repro.protocol.run_protocol_vectorized`, the sharded runtime
  and the live ingestion service.

Per-name capability flags record what each estimator supports, so any
layer can ask by canonical name instead of hardcoding algorithm lists:

``scalar`` / ``batch``
    every registered name has both engines; with one user and the same
    generator the two are bit-identical (tested).
``sharded`` / ``live``
    the batch engine follows the slot-clocked ``submit`` contract, so the
    name runs through ``run_protocol_vectorized``, ``run_protocol_sharded``
    and the live :class:`~repro.service.IngestionPipeline`.
``participation``
    whether the slot-clocked engine accepts partial participation masks
    (dropout).  The sampling family uploads on a calendar shared by the
    whole population and requires everyone present.
``needs_horizon``
    whether the batch engine must know the stream horizon at
    construction (two-phase and segmented schedules).
``kernels``
    whether the estimator's hot loops route through the optional
    compiled-kernel tier (:mod:`repro.kernels`).  True for the SW-based
    family (probe and publication draws run through the SW report
    kernel); the Laplace/SR/PM mechanism-generalizability variants stay
    on plain NumPy.  The tier is a drop-in accelerator — backends are
    bit-identical — so the flag describes routing, not results.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ._validation import ensure_rng
from .baselines import BASW, BDSW, NaiveSampling, SWDirect, ToPL
from .baselines.sw_direct import MechanismDirect
from .core import APP, CAPP, IPP, PPSampling, StreamPerturber

__all__ = [
    "AlgorithmSpec",
    "ALGORITHMS",
    "ALGORITHM_FACTORIES",
    "algorithm_names",
    "capabilities",
    "capability_matrix",
    "make_algorithm",
    "make_batch_engine",
]

#: factory signature: (epsilon, w) -> StreamPerturber
Factory = Callable[[float, int], StreamPerturber]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered estimator: scalar factory plus capability flags."""

    name: str
    factory: Factory
    description: str = ""
    needs_horizon: bool = False
    supports_participation: bool = True
    uses_kernels: bool = True

    def capabilities(self) -> Dict[str, bool]:
        """Execution-mode capability flags for this estimator."""
        return {
            "scalar": True,
            "batch": True,
            "sharded": True,
            "live": True,
            "participation": self.supports_participation,
            "needs_horizon": self.needs_horizon,
            "kernels": self.uses_kernels,
        }


def _mechanism_direct(mechanism: str) -> Factory:
    def factory(epsilon: float, w: int) -> StreamPerturber:
        return MechanismDirect(epsilon, w, mechanism=mechanism)

    return factory


def _mechanism_app(mechanism: str) -> Factory:
    def factory(epsilon: float, w: int) -> StreamPerturber:
        return APP(epsilon, w, mechanism=mechanism)

    return factory


def _spec(name: str, factory: Factory, description: str, **flags) -> AlgorithmSpec:
    return AlgorithmSpec(name=name, factory=factory, description=description, **flags)


ALGORITHMS: Dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in [
        # non-sampling comparison set (Figs. 4, 5, 8a-d; Table I)
        _spec(
            "sw-direct",
            lambda epsilon, w: SWDirect(epsilon, w),
            "per-slot SW reporting, no feedback",
        ),
        _spec(
            "ba-sw",
            lambda epsilon, w: BASW(epsilon, w),
            "w-event budget absorption + SW (Kellaris et al.)",
        ),
        _spec(
            "bd-sw",
            lambda epsilon, w: BDSW(epsilon, w),
            "w-event budget distribution + SW (Kellaris et al.)",
        ),
        _spec(
            "ipp",
            lambda epsilon, w: IPP(epsilon, w),
            "iterative perturbation parameterization (Sec. III-C)",
        ),
        _spec(
            "app",
            lambda epsilon, w: APP(epsilon, w),
            "accumulated perturbation parameterization (Alg. 1)",
        ),
        _spec(
            "capp",
            lambda epsilon, w: CAPP(epsilon, w),
            "clipped APP with tuned clipping (Alg. 2)",
        ),
        _spec(
            "topl",
            lambda epsilon, w: ToPL(epsilon, w),
            "two-phase range estimation + HM (Wang et al.)",
            needs_horizon=True,
        ),
        # sampling comparison set (Figs. 6, 7, 8e-h)
        _spec(
            "sampling",
            lambda epsilon, w: NaiveSampling(epsilon, w),
            "segment means + direct SW at the Theorem-6 budget",
            needs_horizon=True,
            supports_participation=False,
        ),
        _spec(
            "app-s",
            lambda epsilon, w: PPSampling(epsilon, w, base="app"),
            "PP-S sampling over APP (Alg. 3)",
            needs_horizon=True,
            supports_participation=False,
        ),
        _spec(
            "capp-s",
            lambda epsilon, w: PPSampling(epsilon, w, base="capp"),
            "PP-S sampling over CAPP (Alg. 3)",
            needs_horizon=True,
            supports_participation=False,
        ),
        # mechanism generalizability (Fig. 9)
        _spec("sw-app", _mechanism_app("sw"), "APP with the SW mechanism"),
        _spec(
            "laplace-direct",
            _mechanism_direct("laplace"),
            "per-slot Laplace reporting",
            uses_kernels=False,
        ),
        _spec(
            "laplace-app",
            _mechanism_app("laplace"),
            "APP with Laplace",
            uses_kernels=False,
        ),
        _spec(
            "sr-direct",
            _mechanism_direct("sr"),
            "per-slot Duchi SR reporting",
            uses_kernels=False,
        ),
        _spec("sr-app", _mechanism_app("sr"), "APP with Duchi SR", uses_kernels=False),
        _spec("pm-direct", _mechanism_direct("pm"), "per-slot PM reporting", uses_kernels=False),
        _spec("pm-app", _mechanism_app("pm"), "APP with PM", uses_kernels=False),
    ]
}

#: back-compat view: canonical name -> scalar factory
ALGORITHM_FACTORIES: Dict[str, Factory] = {
    name: spec.factory for name, spec in ALGORITHMS.items()
}


def _resolve(name: str) -> AlgorithmSpec:
    key = name.lower()
    spec = ALGORITHMS.get(key)
    if spec is None:
        known = ", ".join(sorted(ALGORITHMS))
        close = difflib.get_close_matches(key, ALGORITHMS, n=3, cutoff=0.5)
        hint = f"; did you mean {' or '.join(repr(c) for c in close)}?" if close else ""
        raise KeyError(f"unknown algorithm {name!r}{hint} (known: {known})")
    return spec


def make_algorithm(name: str, epsilon: float, w: int) -> StreamPerturber:
    """Instantiate a scalar algorithm by its paper name (case-insensitive).

    Unknown names raise with close-match suggestions and the full
    catalogue.
    """
    return _resolve(name).factory(epsilon, w)


def make_batch_engine(
    name: str,
    epsilon: float,
    w: int,
    n_users: int,
    rng: Optional[np.random.Generator] = None,
    horizon: Optional[int] = None,
    record_history: bool = True,
):
    """Build a vectorized population engine by paper name.

    The engine follows the :class:`~repro.core.online.BatchOnlinePerturber`
    slot-clocked contract (``submit`` one ``(n_users,)`` slice per slot)
    and is bit-identical to the scalar algorithm for one user with the
    same generator.

    Args:
        name: canonical algorithm name (case-insensitive).
        epsilon, w: w-event privacy parameters.
        n_users: population size driven by the engine.
        rng: generator owning every subsequent draw.
        horizon: number of slots the engine will see; required by
            horizon-dependent schedules (``needs_horizon`` capability).
        record_history: keep the full per-slot budget ledger.
    """
    spec = _resolve(name)
    if spec.needs_horizon and horizon is None:
        raise ValueError(
            f"algorithm {spec.name!r} schedules its budget over the whole "
            "interval; pass horizon= to build its batch engine"
        )
    scalar = spec.factory(epsilon, w)
    return scalar._make_batch_engine(
        n_users, ensure_rng(rng), horizon=horizon, record_history=record_history
    )


def algorithm_names() -> "list[str]":
    """All registered algorithm names, sorted."""
    return sorted(ALGORITHMS)


def capabilities(name: str) -> Dict[str, bool]:
    """Capability flags of one registered estimator."""
    return _resolve(name).capabilities()


def capability_matrix() -> "Dict[str, Dict[str, bool]]":
    """``{name: capability flags}`` for every registered estimator."""
    return {name: ALGORITHMS[name].capabilities() for name in algorithm_names()}
