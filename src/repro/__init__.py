"""repro — reproduction of "Dual Utilization of Perturbation for Stream
Data Publication under Local Differential Privacy" (ICDE 2025).

Quickstart::

    import numpy as np
    from repro import CAPP

    stream = np.clip(np.sin(np.arange(200) / 10) / 2 + 0.5, 0, 1)
    capp = CAPP(epsilon=1.0, w=10)
    result = capp.perturb_stream(stream, np.random.default_rng(0))
    print(result.mean_estimate(), float(stream.mean()))

Packages:

* :mod:`repro.mechanisms` — LDP randomizers (SW, Laplace, PM, SR, HM).
* :mod:`repro.privacy` — composition, w-event budget accounting.
* :mod:`repro.core` — IPP / APP / CAPP / PP-S / multi-dimensional strategies.
* :mod:`repro.baselines` — SW-direct, BA-SW, ToPL, naive sampling.
* :mod:`repro.datasets` — synthetic generators and real-data substitutes.
* :mod:`repro.metrics` — MSE, cosine, Wasserstein, JSD.
* :mod:`repro.analysis` — collector-side estimation, crowd-level stats.
* :mod:`repro.registry` — capability-aware estimator registry (scalar
  and population-batch engines for every paper algorithm, by name).
* :mod:`repro.runtime` — sharded out-of-core population execution.
* :mod:`repro.service` — live slot-clocked ingestion and serving.
* :mod:`repro.experiments` — runners reproducing every table and figure.
"""

from .baselines import BASW, BDSW, NaiveSampling, SWDirect, ToPL
from .core import (
    APP,
    CAPP,
    IPP,
    BudgetSplit,
    OnlineAPP,
    OnlineCAPP,
    OnlineIPP,
    OnlineSWDirect,
    PerturbationResult,
    PPSampling,
    SampleSplit,
    SamplingResult,
    StreamPerturber,
    choose_clip_bounds,
    choose_num_samples,
    simple_moving_average,
)
from .mechanisms import (
    DuchiMechanism,
    HybridMechanism,
    LaplaceMechanism,
    Mechanism,
    PiecewiseMechanism,
    SquareWaveMechanism,
)
from .privacy import PrivacyBudgetExceededError, WEventAccountant
from .registry import (
    algorithm_names,
    capabilities,
    capability_matrix,
    make_algorithm,
    make_batch_engine,
)

__version__ = "1.0.0"

__all__ = [
    "IPP",
    "APP",
    "CAPP",
    "PPSampling",
    "BudgetSplit",
    "SampleSplit",
    "StreamPerturber",
    "PerturbationResult",
    "SamplingResult",
    "SWDirect",
    "BASW",
    "BDSW",
    "ToPL",
    "NaiveSampling",
    "OnlineSWDirect",
    "OnlineIPP",
    "OnlineAPP",
    "OnlineCAPP",
    "Mechanism",
    "SquareWaveMechanism",
    "LaplaceMechanism",
    "PiecewiseMechanism",
    "DuchiMechanism",
    "HybridMechanism",
    "WEventAccountant",
    "PrivacyBudgetExceededError",
    "choose_clip_bounds",
    "choose_num_samples",
    "simple_moving_average",
    "make_algorithm",
    "make_batch_engine",
    "algorithm_names",
    "capabilities",
    "capability_matrix",
    "__version__",
]
