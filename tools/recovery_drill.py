#!/usr/bin/env python
"""Kill -9 recovery drill: a real subprocess, a real SIGKILL, a bit check.

This is the executable form of the crash-recovery procedure in
``docs/operations.md``.  Each drill round:

1. spawns a child process that streams a deterministic batch sequence
   through a WAL-attached :class:`~repro.service.IngestionPipeline`,
   printing one line per durable batch;
2. sends the child ``SIGKILL`` (the signal that cannot be caught —
   no destructors, no flushes, no goodbyes) after a seeded number of
   batches;
3. recovers the pipeline from the write-ahead log in the parent and
   asserts the recovered state is **bit-identical** to a reference
   pipeline fed the same durable prefix;
4. resumes the run to completion on top of the recovered state and
   asserts the finished run is bit-identical to an uninterrupted one.

Run it from the repo root::

    PYTHONPATH=src python tools/recovery_drill.py --rounds 3

Exit status 0 means every round recovered bit-exactly; any divergence
or corruption exits non-zero.  The in-process chaos harness
(``repro.gateway.run_chaos``) covers many more crash points per second;
this drill exists to prove the same property against an actual process
kill, page cache and all.
"""

import argparse
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

import numpy as np  # noqa: E402

from repro.gateway.chaos import pipeline_fingerprint  # noqa: E402
from repro.service import IngestionPipeline, ReportBatch  # noqa: E402
from repro.wal import WriteAheadLog, recover_pipeline  # noqa: E402

N_SHARDS, HORIZON = 3, 10
CONFIG = dict(epsilon=1.0, w=6, smoothing_window=3, keep_reports=True)


def make_pipeline():
    return IngestionPipeline(n_shards=N_SHARDS, horizon=HORIZON, **CONFIG)


def make_batches(seed):
    """The deterministic batch stream both child and referee replay."""
    rng = np.random.default_rng(seed)
    out = []
    for t in range(HORIZON):
        for shard in rng.permutation(N_SHARDS):
            n = int(rng.integers(3, 8))
            out.append(
                ReportBatch(
                    shard=int(shard),
                    t=t,
                    user_ids=np.arange(n, dtype=np.int64) + 1000 * int(shard),
                    values=rng.uniform(-1.0, 1.0, size=n),
                )
            )
    return out


def child_main(wal_dir, seed, delay):
    """The victim: log batches until killed (or, if spared, finish)."""
    pipeline = make_pipeline()
    pipeline.attach_wal(WriteAheadLog(wal_dir))
    pipeline.start_run({"drill_seed": seed})
    for i, batch in enumerate(make_batches(seed)):
        pipeline.submit(batch)
        print(i, flush=True)  # the batch is durable before this line
        time.sleep(delay)
    pipeline.finish()
    pipeline.build_result(elapsed_seconds=0.0)
    print("DONE", flush=True)
    return 0


def run_round(round_no, wal_dir, seed, kill_after, delay, log):
    """One spawn / SIGKILL / recover / resume / verify cycle."""
    child = subprocess.Popen(
        [
            sys.executable,
            os.path.abspath(__file__),
            "--child",
            "--wal",
            wal_dir,
            "--seed",
            str(seed),
            "--delay",
            str(delay),
        ],
        stdout=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": SRC},
    )
    finished = False
    for line in child.stdout:
        line = line.strip()
        if line == "DONE":
            finished = True
            break
        if int(line) + 1 >= kill_after:
            break
    if not finished:
        os.kill(child.pid, signal.SIGKILL)
    child.wait()
    child.stdout.close()

    recovery = recover_pipeline(wal_dir)
    batches = make_batches(seed)

    # 1. The recovered state matches a referee fed the durable prefix.
    referee = make_pipeline()
    for batch in batches[: recovery.replayed_batches]:
        referee.submit(batch)
    prefix_equal = pipeline_fingerprint(recovery.pipeline) == pipeline_fingerprint(
        referee
    )

    # 2. Resuming on the recovered state finishes bit-identical to a run
    #    that was never interrupted.
    resumed = recovery.pipeline
    if not recovery.run_ended:
        wal = resumed.attach_wal(WriteAheadLog(wal_dir))
        held = {(b.t, b.shard) for b in resumed.pending_batches()}
        for batch in batches:
            if batch.t < resumed.next_slot or (batch.t, batch.shard) in held:
                continue
            resumed.submit(batch)
        resumed.finish()
        resumed.build_result(elapsed_seconds=0.0)
        wal.close()  # mirror the child path: no fd / sync-thread leak per round
    uninterrupted = make_pipeline()
    for batch in batches:
        uninterrupted.submit(batch)
    uninterrupted.finish()
    uninterrupted.build_result(elapsed_seconds=0.0)
    final_equal = pipeline_fingerprint(resumed) == pipeline_fingerprint(uninterrupted)

    verdict = "bit-identical" if prefix_equal and final_equal else "DIVERGED"
    log(
        f"round {round_no}: {'completed' if finished else 'SIGKILL'} after "
        f"{recovery.replayed_batches} durable batches, "
        f"recovered+resumed -> {verdict}"
    )
    return prefix_equal and final_equal


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="kill -9 a WAL-logged ingestion run and prove bit-exact recovery"
    )
    parser.add_argument("--rounds", type=int, default=3, help="drill rounds (default 3)")
    parser.add_argument("--seed", type=int, default=7, help="batch-stream seed")
    parser.add_argument(
        "--delay",
        type=float,
        default=0.003,
        help="seconds between child batches (gives SIGKILL a window)",
    )
    parser.add_argument(
        "--keep",
        action="store_true",
        help="keep each round's WAL directory for inspection",
    )
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--wal", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        return child_main(args.wal, args.seed, args.delay)

    if args.rounds < 1:
        parser.error("--rounds must be >= 1")
    rng = np.random.default_rng(args.seed)
    total = N_SHARDS * HORIZON
    failures = 0
    for round_no in range(1, args.rounds + 1):
        kill_after = int(rng.integers(1, total))
        wal_dir = tempfile.mkdtemp(prefix=f"recovery-drill-{round_no}-")
        try:
            ok = run_round(
                round_no, wal_dir, args.seed, kill_after, args.delay, print
            )
        finally:
            if args.keep:
                print(f"round {round_no}: WAL kept at {wal_dir}")
            else:
                shutil.rmtree(wal_dir, ignore_errors=True)
        failures += 0 if ok else 1
    if failures:
        print(f"recovery drill FAILED: {failures}/{args.rounds} rounds diverged")
        return 1
    print(f"recovery drill passed: {args.rounds}/{args.rounds} rounds bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
