#!/usr/bin/env python
"""Link and reference checker for the documentation set.

Walks ``README.md`` and ``docs/*.md`` and fails (exit 1) when:

* a relative markdown link ``[text](path)`` points at a file that does
  not exist (anchors are checked only for same-file ``#fragment``
  links: the fragment must match a heading);
* an inline-code reference to a repo path (backticked text that looks
  like ``src/...``, ``docs/...``, ``tools/...``, ``benchmarks/...`` or
  ``tests/...``) names a file that does not exist — stale pointers in
  prose are exactly how runbooks rot.

External ``http(s)://`` and ``mailto:`` links are *not* fetched; CI
must not fail on someone else's outage.

Usage::

    python tools/check_docs.py            # check README.md + docs/*.md
    python tools/check_docs.py FILE...    # check specific files
"""

import glob
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: [text](target) — excluding images; target split before any #fragment
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")

#: backticked repo-relative paths in prose
_CODE_PATH_RE = re.compile(
    r"`((?:src|docs|tools|benchmarks|tests|examples)/[A-Za-z0-9_./-]+)`"
)

#: markdown headings, for same-file anchor checks
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

#: fenced code blocks — links inside them are examples, not references
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def _anchor(heading: str) -> str:
    """GitHub-style anchor for a heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def check_file(path: str) -> list:
    """All broken references in one markdown file."""
    with open(path, encoding="utf-8") as fh:
        raw = fh.read()
    prose = _FENCE_RE.sub("", raw)
    base = os.path.dirname(os.path.abspath(path))
    anchors = {_anchor(h) for h in _HEADING_RE.findall(raw)}
    problems = []

    for match in _LINK_RE.finditer(prose):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, fragment = target.partition("#")
        if not file_part:
            if fragment and fragment not in anchors:
                problems.append(f"{path}: broken anchor #{fragment}")
            continue
        resolved = os.path.normpath(os.path.join(base, file_part))
        if not os.path.exists(resolved):
            problems.append(f"{path}: broken link {target}")

    for match in _CODE_PATH_RE.finditer(prose):
        target = match.group(1).rstrip(".")
        resolved = os.path.join(REPO_ROOT, target)
        # A trailing slash or a bare directory reference is fine;
        # globs ("docs/*.md") are checked for at least one match.
        if any(ch in target for ch in "*?"):
            if not glob.glob(resolved):
                problems.append(f"{path}: stale path reference `{target}`")
        elif not os.path.exists(resolved):
            problems.append(f"{path}: stale path reference `{target}`")
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        files = argv
    else:
        files = [os.path.join(REPO_ROOT, "README.md")] + sorted(
            glob.glob(os.path.join(REPO_ROOT, "docs", "*.md"))
        )
    problems = []
    for path in files:
        if not os.path.exists(path):
            problems.append(f"{path}: file not found")
            continue
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = ", ".join(os.path.relpath(f, REPO_ROOT) for f in files)
    if problems:
        print(f"docs check FAILED: {len(problems)} broken reference(s)")
        return 1
    print(f"docs check passed ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
